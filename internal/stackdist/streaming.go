package stackdist

import (
	"hbmsim/internal/model"
)

// Streaming maintains LRU stack distances and the induced miss-ratio
// curve incrementally, one access at a time, so a live observer can ask
// "what HBM size does the current phase need?" while the trace is still
// being generated. Observe performs exactly the per-access arithmetic of
// the batch Distances function (the same Fenwick-tree formulation), so
// feeding a trace through a Streaming yields, access for access, the
// distances Distances would report — a property the differential tests
// pin.
//
// Memory grows with the positions observed (one Fenwick slot per access,
// doubled amortised) plus one map entry and one distance-count slot per
// distinct page. Not safe for concurrent use; observers run on the
// simulation goroutine.
type Streaming struct {
	// pos marks each live page's most recent position, exactly as in
	// Distances: +1 at the latest access, the previous marker removed.
	pos *fenwick
	// posCap is the position capacity of pos (rebuilt at 2x on overflow).
	posCap int
	// last maps each page to its most recent position.
	last map[model.PageID]int
	// n is the number of accesses observed so far.
	n int
	// cold counts first-touch accesses (== distinct pages).
	cold uint64
	// distCounts[d-1] counts reuses at stack distance d; distTree mirrors
	// it as a Fenwick for O(log n) rank queries. Distances never exceed
	// the number of distinct pages, so the slice stays small.
	distCounts []int64
	distTree   *fenwick64
	finite     uint64
	maxDist    int64
}

// NewStreaming returns an empty incremental stack-distance tracker.
func NewStreaming() *Streaming {
	const initialCap = 1024
	return &Streaming{
		pos:    newFenwick(initialCap),
		posCap: initialCap,
		last:   make(map[model.PageID]int, 256),
	}
}

// Observe records one access and returns its LRU stack distance (-1 for
// a cold first touch), matching Distances' per-access output.
func (s *Streaming) Observe(p model.PageID) int64 {
	i := s.n
	s.n++
	if i >= s.posCap {
		s.growPositions()
	}
	var d int64 = -1
	if j, ok := s.last[p]; ok {
		d = int64(s.pos.sumRange(j+1, i-1)) + 1
		s.pos.add(j, -1)
		s.recordDistance(d)
	} else {
		s.cold++
	}
	s.pos.add(i, 1)
	s.last[p] = i
	return d
}

// growPositions doubles the position Fenwick. Only each live page's last
// position carries a marker (every reuse removes the previous one), so
// the rebuilt tree is reconstructed exactly from the last-position map.
func (s *Streaming) growPositions() {
	s.posCap *= 2
	s.pos = newFenwick(s.posCap)
	for _, j := range s.last {
		s.pos.add(j, 1)
	}
}

// recordDistance counts one finite reuse distance d >= 1.
func (s *Streaming) recordDistance(d int64) {
	if d > int64(len(s.distCounts)) {
		grown := make([]int64, nextPow2(int(d)))
		copy(grown, s.distCounts)
		s.distCounts = grown
		s.distTree = newFenwick64(len(grown))
		for i, c := range s.distCounts {
			if c != 0 {
				s.distTree.add(i, c)
			}
		}
	}
	s.distCounts[d-1]++
	s.distTree.add(int(d-1), 1)
	s.finite++
	if d > s.maxDist {
		s.maxDist = d
	}
}

func nextPow2(n int) int {
	c := 1
	for c < n {
		c *= 2
	}
	return c
}

// Total returns the number of accesses observed.
func (s *Streaming) Total() uint64 { return uint64(s.n) }

// Cold returns the number of first-touch accesses.
func (s *Streaming) Cold() uint64 { return s.cold }

// Unique returns the number of distinct pages observed (== Cold).
func (s *Streaming) Unique() int { return len(s.last) }

// FiniteReuses returns the number of accesses with a finite distance.
func (s *Streaming) FiniteReuses() uint64 { return s.finite }

// MaxDistance returns the largest finite distance observed (0 if none).
func (s *Streaming) MaxDistance() int64 { return s.maxDist }

// CountLE returns the number of finite distances <= d.
func (s *Streaming) CountLE(d int64) uint64 {
	if d < 1 || s.distTree == nil {
		return 0
	}
	if d > int64(len(s.distCounts)) {
		d = int64(len(s.distCounts))
	}
	return uint64(s.distTree.sum(int(d - 1)))
}

// Misses returns the number of LRU misses the observed prefix incurs in
// a cache of size k, matching Curve.Misses: cold accesses miss at every
// size, and a reuse misses iff its distance exceeds k.
func (s *Streaming) Misses(k int) uint64 {
	if k <= 0 {
		return s.Total()
	}
	return s.cold + s.finite - s.CountLE(int64(k))
}

// MissRatio returns Misses(k) / Total, or 0 before the first access.
func (s *Streaming) MissRatio(k int) float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.Misses(k)) / float64(s.n)
}

// DistanceQuantile returns the q-quantile (0..1) of the finite
// distances, with the same index convention as Curve.DistanceQuantile
// (rank int(q*(finite-1)) of the sorted distances); 0 when there are no
// reuses yet.
func (s *Streaming) DistanceQuantile(q float64) int64 {
	if s.finite == 0 {
		return 0
	}
	var rank uint64
	switch {
	case q <= 0:
		rank = 0
	case q >= 1:
		rank = s.finite - 1
	default:
		rank = uint64(q * float64(s.finite-1))
	}
	// Smallest d with CountLE(d) > rank, found by binary search on the
	// monotone prefix counts.
	lo, hi := int64(1), s.maxDist
	for lo < hi {
		mid := (lo + hi) / 2
		if s.CountLE(mid) > rank {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// fenwick64 is a Fenwick tree with int64 values for distance counts
// (reuse counts overflow int32 on long traces).
type fenwick64 struct {
	tree []int64
}

func newFenwick64(n int) *fenwick64 { return &fenwick64{tree: make([]int64, n+1)} }

func (f *fenwick64) add(i int, delta int64) {
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// sum returns the prefix sum over [0, i].
func (f *fenwick64) sum(i int) int64 {
	var s int64
	for i++; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}
