package stackdist

import (
	"math/rand"
	"testing"

	"hbmsim/internal/core"
	"hbmsim/internal/model"
	"hbmsim/internal/trace"
)

// TestCurveMatchesFullSimulator cross-validates two independent
// implementations of LRU: the analytic stack-distance curve and the tick
// simulator. For a single core with no channel contention, the
// simulator's miss count must equal the curve's prediction exactly, at
// every cache size.
func TestCurveMatchesFullSimulator(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		n := 200 + rng.Intn(400)
		pages := 4 + rng.Intn(30)
		tr := make(trace.Trace, n)
		for i := range tr {
			tr[i] = model.PageID(rng.Intn(pages))
		}
		c := CurveOf(tr)
		for _, k := range []int{1, 2, 4, 8, 16, 64} {
			res, err := core.Run(core.Config{HBMSlots: k, Channels: 1}, [][]model.PageID{tr})
			if err != nil {
				t.Fatalf("trial %d k=%d: %v", trial, k, err)
			}
			if res.Misses != c.Misses(k) {
				t.Fatalf("trial %d k=%d: simulator %d misses, stack-distance curve %d",
					trial, k, res.Misses, c.Misses(k))
			}
		}
	}
}

// TestPartitionPredictsPrioritySimulator: for fully separated phases,
// Priority arbitration should approach the clairvoyant static partition's
// miss count far more closely than FIFO does — the quantitative form of
// the paper's partitioning argument.
func TestPartitionPredictsPrioritySimulator(t *testing.T) {
	// Core A loops over 30 pages (needs 30 slots to hit); cores B-D
	// stream unique pages (need nothing).
	var a trace.Trace
	for r := 0; r < 40; r++ {
		for p := model.PageID(0); p < 30; p++ {
			a = append(a, p)
		}
	}
	mkStream := func(base model.PageID) trace.Trace {
		tr := make(trace.Trace, 900)
		for i := range tr {
			tr[i] = base + model.PageID(i)
		}
		return tr
	}
	ts := [][]model.PageID{a, mkStream(10000), mkStream(20000), mkStream(30000)}
	curves := []Curve{CurveOf(ts[0]), CurveOf(ts[1]), CurveOf(ts[2]), CurveOf(ts[3])}

	const k = 90 // loop working set (30) plus its Priority pollution window
	_, optMisses, err := OptimalPartition(curves, k)
	if err != nil {
		t.Fatal(err)
	}
	prio, err := core.Run(core.Config{HBMSlots: k, Channels: 1, Arbiter: "priority"}, ts)
	if err != nil {
		t.Fatal(err)
	}
	fifo, err := core.Run(core.Config{HBMSlots: k, Channels: 1, Arbiter: "fifo"}, ts)
	if err != nil {
		t.Fatal(err)
	}
	if prio.Misses >= fifo.Misses {
		t.Fatalf("Priority should miss less than FIFO here: %d vs %d", prio.Misses, fifo.Misses)
	}
	// Priority realises the clairvoyant static partition almost exactly
	// (its pecking order protects the loop); FIFO's extra queueing delay
	// widens the loop's reuse window past k and it thrashes.
	if float64(prio.Misses) > 1.05*float64(optMisses) {
		t.Fatalf("Priority misses %d above the static-partition bound %d",
			prio.Misses, optMisses)
	}
	if float64(fifo.Misses) < 1.25*float64(optMisses) {
		t.Fatalf("test lost its discriminating power: FIFO misses %d near bound %d",
			fifo.Misses, optMisses)
	}
}
