package hbm

import (
	"testing"

	"hbmsim/internal/model"
	"hbmsim/internal/replacement"
)

func newAssoc(t *testing.T, k int) *Assoc {
	t.Helper()
	s, err := NewAssoc(k, replacement.MustNew(replacement.LRU, 0))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustInsert(t *testing.T, s Store, page model.PageID) {
	t.Helper()
	if _, _, err := s.Insert(page); err != nil {
		t.Fatalf("insert %d: %v", page, err)
	}
}

func TestNewAssocErrors(t *testing.T) {
	if _, err := NewAssoc(0, replacement.MustNew(replacement.LRU, 0)); err == nil {
		t.Fatal("k=0 should be rejected")
	}
	if _, err := NewAssoc(-1, replacement.MustNew(replacement.LRU, 0)); err == nil {
		t.Fatal("negative k should be rejected")
	}
	if _, err := NewAssoc(4, nil); err == nil {
		t.Fatal("nil policy should be rejected")
	}
	used := replacement.MustNew(replacement.LRU, 0)
	used.Insert(1)
	if _, err := NewAssoc(4, used); err == nil {
		t.Fatal("non-empty policy should be rejected")
	}
}

func TestAssocInsertContainsEvict(t *testing.T) {
	s := newAssoc(t, 2)
	if s.Capacity() != 2 || s.Len() != 0 || s.Free() != 2 {
		t.Fatalf("fresh store: cap=%d len=%d free=%d", s.Capacity(), s.Len(), s.Free())
	}
	mustInsert(t, s, 10)
	mustInsert(t, s, 20)
	if !s.Contains(10) || !s.Contains(20) || s.Contains(30) {
		t.Fatal("containment wrong after inserts")
	}
	if s.Free() != 0 {
		t.Fatalf("free: got %d, want 0", s.Free())
	}
	if _, _, err := s.Insert(30); err == nil {
		t.Fatal("insert into full store should fail")
	}
	if _, _, err := s.Insert(10); err == nil {
		t.Fatal("inserting a resident page should fail")
	}
	page, ok := s.Evict()
	if !ok || page != 10 {
		t.Fatalf("evict: got %d/%v, want 10 (LRU)", page, ok)
	}
}

func TestAssocEnsureRoom(t *testing.T) {
	s := newAssoc(t, 3)
	mustInsert(t, s, 1)
	mustInsert(t, s, 2)
	mustInsert(t, s, 3)
	// Room for 2 incoming pages: evict 2 LRU victims.
	ev := s.EnsureRoom(2)
	if len(ev) != 2 || ev[0] != 1 || ev[1] != 2 {
		t.Fatalf("EnsureRoom evicted %v, want [1 2]", ev)
	}
	if s.Free() != 2 {
		t.Fatalf("free after EnsureRoom: %d", s.Free())
	}
	// Already enough room: no evictions.
	if ev := s.EnsureRoom(2); len(ev) != 0 {
		t.Fatalf("unnecessary evictions: %v", ev)
	}
	// Request beyond capacity: evicts everything, then stops.
	mustInsert(t, s, 4)
	if ev := s.EnsureRoom(5); len(ev) != 2 {
		t.Fatalf("EnsureRoom(5) on 2 resident: evicted %v", ev)
	}
}

func TestAssocTouchChangesVictim(t *testing.T) {
	s := newAssoc(t, 2)
	mustInsert(t, s, 1)
	mustInsert(t, s, 2)
	s.Touch(1)
	if page, _ := s.Evict(); page != 2 {
		t.Fatalf("evict after touch: got %d, want 2", page)
	}
}

func TestAssocRemove(t *testing.T) {
	s := newAssoc(t, 2)
	mustInsert(t, s, 1)
	if !s.Remove(1) {
		t.Fatal("remove of resident page should report true")
	}
	if s.Remove(1) {
		t.Fatal("second remove should report false")
	}
	if s.Len() != 0 {
		t.Fatalf("len after remove: %d", s.Len())
	}
}

func TestAssocEvictEmpty(t *testing.T) {
	s := newAssoc(t, 1)
	if _, ok := s.Evict(); ok {
		t.Fatal("evict from empty store should fail")
	}
}

func TestAssocKind(t *testing.T) {
	s := newAssoc(t, 1)
	if s.PolicyKind() != replacement.LRU {
		t.Fatalf("policy kind: got %s", s.PolicyKind())
	}
	if s.Kind() != "associative/lru" {
		t.Fatalf("kind: %q", s.Kind())
	}
}

func TestDirectMappedBasics(t *testing.T) {
	s, err := NewDirectMapped(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Capacity() != 8 || s.Len() != 0 {
		t.Fatalf("fresh: cap=%d len=%d", s.Capacity(), s.Len())
	}
	mustInsert(t, s, 42)
	if !s.Contains(42) || s.Contains(43) {
		t.Fatal("containment wrong")
	}
	if s.Len() != 1 {
		t.Fatalf("len: %d", s.Len())
	}
	if _, _, err := s.Insert(42); err == nil {
		t.Fatal("re-inserting a resident page should fail")
	}
	if ev := s.EnsureRoom(100); ev != nil {
		t.Fatalf("direct-mapped EnsureRoom should be a no-op, got %v", ev)
	}
	s.Touch(42) // no-op, must not panic
	if s.Kind() != "direct-mapped" {
		t.Fatalf("kind: %q", s.Kind())
	}
}

func TestDirectMappedConflictDisplaces(t *testing.T) {
	s, err := NewDirectMapped(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	mustInsert(t, s, 1)
	// Find a page colliding with page 1's slot.
	var collider model.PageID
	for p := model.PageID(2); ; p++ {
		if s.slot(p) == s.slot(1) {
			collider = p
			break
		}
	}
	displaced, was, err := s.Insert(collider)
	if err != nil {
		t.Fatal(err)
	}
	if !was || displaced != 1 {
		t.Fatalf("displacement: got %d/%v, want 1/true", displaced, was)
	}
	if s.Contains(1) || !s.Contains(collider) {
		t.Fatal("slot contents wrong after displacement")
	}
	if s.Len() != 1 {
		t.Fatalf("len after displacement: %d", s.Len())
	}
}

func TestDirectMappedNoFalseHits(t *testing.T) {
	s, err := NewDirectMapped(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	mustInsert(t, s, 100)
	for p := model.PageID(0); p < 200; p++ {
		if p != 100 && s.Contains(p) {
			t.Fatalf("false residency for page %d", p)
		}
	}
}

func TestDirectMappedErrors(t *testing.T) {
	if _, err := NewDirectMapped(0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestDirectMappedSeedChangesHash(t *testing.T) {
	countCollisions := func(seed int64) int {
		s, err := NewDirectMapped(64, seed)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for p := model.PageID(0); p < 256; p++ {
			if _, was, _ := s.Insert(p); was {
				n++
			}
		}
		return n
	}
	// Different seeds give different hash functions; with 256 pages into
	// 64 slots both see many collisions, but the exact counts almost
	// surely differ.
	if countCollisions(1) == 0 {
		t.Fatal("no collisions with 4x oversubscription is impossible")
	}
}

// Interface conformance.
var (
	_ Store = (*Assoc)(nil)
	_ Store = (*DirectMapped)(nil)
)
