package hbm

import (
	"fmt"
	"math/rand"

	"hbmsim/internal/directmap"
	"hbmsim/internal/model"
)

// DirectMapped is the hardware-realistic store: page p may only occupy
// slot h(p) for a fixed 2-universal hash h, so inserting a page displaces
// whatever occupied its slot. There is no replacement policy — conflicts
// decide evictions, exactly as in KNL cache mode.
type DirectMapped struct {
	slots []model.PageID
	full  []bool
	hash  directmap.UniversalHash
	n     int
}

// NewDirectMapped returns an empty direct-mapped store of k slots with a
// hash drawn from the 2-universal family using the seed.
func NewDirectMapped(k int, seed int64) (*DirectMapped, error) {
	if k <= 0 {
		return nil, fmt.Errorf("hbm: capacity must be positive, got %d", k)
	}
	h, err := directmap.NewUniversalHash(uint64(k), rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return &DirectMapped{
		slots: make([]model.PageID, k),
		full:  make([]bool, k),
		hash:  h,
	}, nil
}

// Capacity returns k.
func (s *DirectMapped) Capacity() int { return len(s.slots) }

// Len returns the number of occupied slots.
func (s *DirectMapped) Len() int { return s.n }

// slot returns the unique slot of the page.
func (s *DirectMapped) slot(page model.PageID) uint64 { return s.hash.Hash(uint64(page)) }

// Contains reports whether the page is resident (in its slot).
func (s *DirectMapped) Contains(page model.PageID) bool {
	i := s.slot(page)
	return s.full[i] && s.slots[i] == page
}

// Touch is a no-op: direct-mapped slots have no recency state.
func (s *DirectMapped) Touch(model.PageID) {}

// EnsureRoom is a no-op: conflicts evict at insert time.
func (s *DirectMapped) EnsureRoom(int) []model.PageID { return nil }

// Insert places the page in its slot, displacing the occupant if any.
func (s *DirectMapped) Insert(page model.PageID) (model.PageID, bool, error) {
	i := s.slot(page)
	if s.full[i] {
		if s.slots[i] == page {
			return 0, false, fmt.Errorf("hbm: page %d already resident", page)
		}
		old := s.slots[i]
		s.slots[i] = page
		return old, true, nil
	}
	s.slots[i] = page
	s.full[i] = true
	s.n++
	return 0, false, nil
}

// Kind describes the organisation.
func (s *DirectMapped) Kind() string { return "direct-mapped" }
