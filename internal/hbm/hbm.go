// Package hbm implements the HBM block store of the model: k slots, each
// holding one page, with residency queries, insertion of fetched blocks,
// and eviction.
//
// Two organisations are provided, matching §2 of the paper:
//
//   - Assoc: fully associative — any page can occupy any slot, and a
//     pluggable replacement policy picks eviction victims. This is the
//     organisation the theory analyses (Property 3 of §3).
//   - DirectMapped: each page can live only in the slot a 2-universal hash
//     assigns it, as in real KNL/Sapphire-Rapids cache-mode HBM; inserting
//     a page displaces the slot's occupant. Corollary 1 shows this costs
//     only constants, which the "mapping" experiment verifies.
package hbm

import (
	"fmt"

	"hbmsim/internal/model"
	"hbmsim/internal/replacement"
)

// Store is the simulator's view of the HBM. Implementations are not safe
// for concurrent use.
type Store interface {
	// Capacity returns k, the number of slots.
	Capacity() int
	// Len returns the number of resident pages.
	Len() int
	// Contains reports whether the page is resident.
	Contains(page model.PageID) bool
	// Touch records an access to a resident page (refreshing it for
	// recency-based policies). Touching a non-resident page is a no-op.
	Touch(page model.PageID)
	// EnsureRoom prepares the store to accept n incoming pages, evicting
	// as needed, and returns the pages evicted. Associative stores evict
	// max(0, n - free) victims by the replacement policy (the model's
	// step 3); direct-mapped stores evict at insert time instead and
	// always return nil here.
	//
	// Aliasing contract: the returned slice may alias an internal
	// scratch buffer that the next EnsureRoom call on the same store
	// overwrites. Callers must consume it (or copy it) before calling
	// EnsureRoom again and must not retain it;
	// TestEnsureRoomScratchAliasing pins this behaviour.
	EnsureRoom(n int) []model.PageID
	// Insert makes a fetched page resident. displaced reports a page that
	// the insert evicted (direct-mapped slot conflicts); associative
	// stores never displace — callers must EnsureRoom first, and an
	// insert into a full associative store is an error.
	Insert(page model.PageID) (displaced model.PageID, wasDisplaced bool, err error)
	// Kind describes the organisation for reports.
	Kind() string
}

// BatchToucher is an optional Store capability: TouchAll(pages) must be
// behaviourally identical to touching each page in order. All four store
// implementations provide it; the simulator's fast-forward path uses it
// to replay a contention-free stretch's recency updates in one call.
type BatchToucher interface {
	TouchAll(pages []model.PageID)
}

// Assoc is the fully-associative store.
type Assoc struct {
	capacity int
	policy   replacement.Policy
	scratch  []model.PageID

	// batch caches the policy's BatchToucher assertion (nil when the
	// policy has none); checked lazily on the first TouchAll.
	batch        replacement.BatchToucher
	batchChecked bool
}

// NewAssoc returns an empty fully-associative store with capacity k slots.
func NewAssoc(k int, policy replacement.Policy) (*Assoc, error) {
	if k <= 0 {
		return nil, fmt.Errorf("hbm: capacity must be positive, got %d", k)
	}
	if policy == nil {
		return nil, fmt.Errorf("hbm: replacement policy must not be nil")
	}
	if policy.Len() != 0 {
		return nil, fmt.Errorf("hbm: replacement policy already tracks %d pages", policy.Len())
	}
	return &Assoc{capacity: k, policy: policy}, nil
}

// Capacity returns k.
func (s *Assoc) Capacity() int { return s.capacity }

// Len returns the number of resident pages.
func (s *Assoc) Len() int { return s.policy.Len() }

// Free returns the number of empty slots.
func (s *Assoc) Free() int { return s.capacity - s.policy.Len() }

// Contains reports whether the page is resident.
func (s *Assoc) Contains(page model.PageID) bool { return s.policy.Contains(page) }

// Touch refreshes a resident page.
func (s *Assoc) Touch(page model.PageID) { s.policy.Touch(page) }

// TouchAll refreshes the pages in order, delegating to the policy's
// batched entry point when it has one (all dense policies do) and
// falling back to a Touch loop otherwise.
func (s *Assoc) TouchAll(pages []model.PageID) {
	if !s.batchChecked {
		s.batch, _ = s.policy.(replacement.BatchToucher)
		s.batchChecked = true
	}
	if s.batch != nil {
		s.batch.TouchAll(pages)
		return
	}
	for _, p := range pages {
		s.policy.Touch(p)
	}
}

// EnsureRoom evicts max(0, n - free) victims chosen by the replacement
// policy and returns them. The returned slice aliases the store's
// scratch buffer and is invalidated (overwritten) by the next
// EnsureRoom call — copy it if it must outlive that.
func (s *Assoc) EnsureRoom(n int) []model.PageID {
	s.scratch = s.scratch[:0]
	for need := n - s.Free(); need > 0; need-- {
		page, ok := s.policy.Evict()
		if !ok {
			break
		}
		s.scratch = append(s.scratch, page)
	}
	return s.scratch
}

// Insert makes a fetched page resident; the store must have a free slot.
func (s *Assoc) Insert(page model.PageID) (model.PageID, bool, error) {
	if s.policy.Contains(page) {
		return 0, false, fmt.Errorf("hbm: page %d already resident", page)
	}
	if s.Free() == 0 {
		return 0, false, fmt.Errorf("hbm: store full (capacity %d), cannot insert page %d", s.capacity, page)
	}
	s.policy.Insert(page)
	return 0, false, nil
}

// Evict removes and returns the replacement policy's victim; ok is false
// when the store is empty.
func (s *Assoc) Evict() (model.PageID, bool) { return s.policy.Evict() }

// Remove invalidates a specific resident page, reporting whether it was
// resident.
func (s *Assoc) Remove(page model.PageID) bool {
	if !s.policy.Contains(page) {
		return false
	}
	s.policy.Remove(page)
	return true
}

// PolicyKind returns the kind of the underlying replacement policy.
func (s *Assoc) PolicyKind() replacement.Kind { return s.policy.Kind() }

// Kind describes the organisation.
func (s *Assoc) Kind() string { return fmt.Sprintf("associative/%s", s.policy.Kind()) }
