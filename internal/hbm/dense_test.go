package hbm

import (
	"math/rand"
	"testing"

	"hbmsim/internal/model"
	"hbmsim/internal/replacement"
)

// TestEnsureRoomScratchAliasing pins the documented aliasing contract of
// Store.EnsureRoom: the returned slice aliases a per-store scratch
// buffer, so the next EnsureRoom call overwrites it. A caller that
// silently retained the slice would observe its contents change — this
// test is the regression tripwire for that contract.
func TestEnsureRoomScratchAliasing(t *testing.T) {
	s := newAssoc(t, 4)
	for p := model.PageID(1); p <= 4; p++ {
		mustInsert(t, s, p)
	}

	first := s.EnsureRoom(2) // LRU evicts 1, 2
	if len(first) != 2 || first[0] != 1 || first[1] != 2 {
		t.Fatalf("first EnsureRoom: got %v, want [1 2]", first)
	}
	retained := first // what a buggy caller would hold on to
	kept := append([]model.PageID(nil), first...)

	mustInsert(t, s, 5)
	mustInsert(t, s, 6)
	second := s.EnsureRoom(2) // LRU evicts 3, 4
	if len(second) != 2 || second[0] != 3 || second[1] != 4 {
		t.Fatalf("second EnsureRoom: got %v, want [3 4]", second)
	}

	// Both calls handed out the same backing array...
	if &retained[0] != &second[0] {
		t.Fatalf("EnsureRoom no longer reuses its scratch buffer; update the documented contract")
	}
	// ...so the retained slice was clobbered, while the copy survived.
	if retained[0] != 3 || retained[1] != 4 {
		t.Fatalf("retained slice reads %v; the aliasing contract changed", retained)
	}
	if kept[0] != 1 || kept[1] != 2 {
		t.Fatalf("copied slice was corrupted: %v", kept)
	}
}

// TestEnsureRoomScratchGrows checks that a larger later request still
// returns every victim even after earlier calls sized the scratch small.
func TestEnsureRoomScratchGrows(t *testing.T) {
	s := newAssoc(t, 8)
	for p := model.PageID(1); p <= 8; p++ {
		mustInsert(t, s, p)
	}
	if got := s.EnsureRoom(1); len(got) != 1 {
		t.Fatalf("EnsureRoom(1): %v", got)
	}
	got := s.EnsureRoom(8)
	if len(got) != 7 { // 1 slot already free
		t.Fatalf("EnsureRoom(8) evicted %d pages, want 7", len(got))
	}
}

// TestDenseDirectMappedMatchesSparse drives a DenseDirectMapped store and
// the map-free-but-hash-per-access DirectMapped reference through the
// same operation sequence and requires identical residency, displacement,
// and occupancy at every step — for both an identity compaction and a
// shuffled (non-identity) origOf table. Slots must agree because the
// dense store hashes the original IDs at construction.
func TestDenseDirectMappedMatchesSparse(t *testing.T) {
	const k, universe = 16, 64
	for _, shuffled := range []bool{false, true} {
		var origOf []model.PageID
		orig := func(d model.PageID) model.PageID { return d }
		if shuffled {
			perm := rand.New(rand.NewSource(3)).Perm(universe)
			origOf = make([]model.PageID, universe)
			for d, o := range perm {
				origOf[d] = model.PageID(o * 977) // sparse originals
			}
			orig = func(d model.PageID) model.PageID { return origOf[d] }
		}

		dense, err := NewDenseDirectMapped(k, 42, universe, origOf)
		if err != nil {
			t.Fatal(err)
		}
		sparse, err := NewDirectMapped(k, 42)
		if err != nil {
			t.Fatal(err)
		}

		rng := rand.New(rand.NewSource(7))
		for step := 0; step < 2000; step++ {
			d := model.PageID(rng.Intn(universe))
			o := orig(d)
			if dense.Contains(d) != sparse.Contains(o) {
				t.Fatalf("shuffled=%v step %d: Contains(%d) diverges", shuffled, step, d)
			}
			if dense.Contains(d) {
				dense.Touch(d)
				sparse.Touch(o)
				continue
			}
			dv, ddisp, derr := dense.Insert(d)
			sv, sdisp, serr := sparse.Insert(o)
			if (derr == nil) != (serr == nil) || ddisp != sdisp {
				t.Fatalf("shuffled=%v step %d: Insert(%d) diverges: (%v,%v) vs (%v,%v)",
					shuffled, step, d, ddisp, derr, sdisp, serr)
			}
			if ddisp && orig(dv) != sv {
				t.Fatalf("shuffled=%v step %d: displaced %d (orig %d), reference displaced %d",
					shuffled, step, dv, orig(dv), sv)
			}
			if dense.Len() != sparse.Len() {
				t.Fatalf("shuffled=%v step %d: Len %d vs %d", shuffled, step, dense.Len(), sparse.Len())
			}
		}
	}
}

// TestDenseDirectMappedErrors covers the constructor's validation and the
// duplicate-insert error path.
func TestDenseDirectMappedErrors(t *testing.T) {
	if _, err := NewDenseDirectMapped(0, 1, 4, nil); err == nil {
		t.Fatal("k=0 should be rejected")
	}
	if _, err := NewDenseDirectMapped(4, 1, -1, nil); err == nil {
		t.Fatal("negative universe should be rejected")
	}
	if _, err := NewDenseDirectMapped(4, 1, 4, make([]model.PageID, 3)); err == nil {
		t.Fatal("origOf/universe length mismatch should be rejected")
	}
	s, err := NewDenseDirectMapped(4, 1, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind() != "direct-mapped" {
		t.Fatalf("Kind = %q", s.Kind())
	}
	mustInsert(t, s, 3)
	if _, _, err := s.Insert(3); err == nil {
		t.Fatal("duplicate insert should error")
	}
	if got := s.EnsureRoom(4); got != nil {
		t.Fatalf("EnsureRoom should be a no-op, got %v", got)
	}
	if s.Capacity() != 4 || s.Len() != 1 {
		t.Fatalf("cap=%d len=%d", s.Capacity(), s.Len())
	}
}

// TestAssocWithDensePolicy runs the associative store over a dense LRU
// policy, checking the Store contract end to end on compacted IDs.
func TestAssocWithDensePolicy(t *testing.T) {
	pol, err := replacement.NewDense(replacement.LRU, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewAssoc(3, pol)
	if err != nil {
		t.Fatal(err)
	}
	for p := model.PageID(0); p < 3; p++ {
		mustInsert(t, s, p)
	}
	s.Touch(0) // refresh: eviction order becomes 1, 2, 0
	got := s.EnsureRoom(3)
	want := []model.PageID{1, 2, 0}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("EnsureRoom over dense LRU: got %v, want %v", got, want)
	}
}
