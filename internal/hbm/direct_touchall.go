package hbm

import "hbmsim/internal/model"

// TouchAll is a no-op: direct-mapped slots have no recency state.
func (s *DirectMapped) TouchAll([]model.PageID) {}

// TouchAll is a no-op: direct-mapped slots have no recency state.
func (s *DenseDirectMapped) TouchAll([]model.PageID) {}
