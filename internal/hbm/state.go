package hbm

import (
	"fmt"

	"hbmsim/internal/snap"
)

// Checkpoint support. Assoc delegates to its replacement policy (the
// policy's residency set IS the store's residency set); DenseDirectMapped
// serialises its occupied slots. The sparse map-based DirectMapped store
// deliberately has no checkpoint support — it only backs the uncompacted
// differential-test path.

// SaveState implements snap.Saver when the underlying policy does;
// otherwise it latches a descriptive error into the writer.
func (s *Assoc) SaveState(w *snap.Writer) {
	sv, ok := s.policy.(snap.Saver)
	if !ok {
		w.Fail(fmt.Errorf("hbm: replacement policy %T does not support checkpointing", s.policy))
		return
	}
	sv.SaveState(w)
}

// LoadState implements snap.Loader.
func (s *Assoc) LoadState(r *snap.Reader) {
	ld, ok := s.policy.(snap.Loader)
	if !ok {
		r.Failf("hbm: replacement policy %T does not support checkpointing", s.policy)
		return
	}
	ld.LoadState(r)
	if r.Err() == nil && s.policy.Len() > s.capacity {
		r.Failf("hbm: snapshot holds %d resident pages for capacity %d", s.policy.Len(), s.capacity)
	}
}

// FinishLoad implements snap.Finisher, forwarding to the policy when it
// has deferred restore work (the random policy's rng replay).
func (s *Assoc) FinishLoad() error {
	if f, ok := s.policy.(snap.Finisher); ok {
		return f.FinishLoad()
	}
	return nil
}

// SaveState implements snap.Saver: the occupied (slot, page) pairs in
// slot order.
func (s *DenseDirectMapped) SaveState(w *snap.Writer) {
	w.Int(s.n)
	for i, pg := range s.slots {
		if pg >= 0 {
			w.U64(uint64(i))
			w.U64(uint64(pg))
		}
	}
}

// LoadState implements snap.Loader. Each pair is validated against the
// precomputed slot hash — a page can only be resident in its own slot —
// so a corrupt snapshot cannot fabricate impossible residency.
func (s *DenseDirectMapped) LoadState(r *snap.Reader) {
	for i := range s.slots {
		s.slots[i] = -1
	}
	s.n = 0
	n := r.Len(len(s.slots), "direct-mapped slots")
	for j := 0; j < n; j++ {
		slot := r.U64()
		page := r.Page()
		if r.Err() != nil {
			return
		}
		if slot >= uint64(len(s.slots)) {
			r.Failf("snap: slot %d out of range (capacity %d)", slot, len(s.slots))
			return
		}
		if uint64(s.slotOf[page]) != slot {
			r.Failf("snap: page %d mapped to slot %d, hash says %d", page, slot, s.slotOf[page])
			return
		}
		if s.slots[slot] >= 0 {
			r.Failf("snap: slot %d occupied twice", slot)
			return
		}
		s.slots[slot] = int32(page)
		s.n++
	}
}
