package hbm

import (
	"fmt"
	"math/rand"

	"hbmsim/internal/directmap"
	"hbmsim/internal/model"
)

// DenseDirectMapped is the direct-mapped store for a page universe that
// has been compacted to [0, universe): each page's slot is precomputed
// once at construction into a flat slotOf table, so Contains and Insert
// — the tick-path operations — are two array reads instead of a
// 128-bit universal-hash evaluation per access.
//
// Crucially, the slot of dense page d is the hash of its *original*
// PageID (via origOf), not of d itself: slot conflicts — and therefore
// evictions, makespans, and every downstream metric — are bit-identical
// to NewDirectMapped running on the uncompacted workload with the same
// seed. A nil origOf means the compaction was the identity.
type DenseDirectMapped struct {
	slots  []int32  // slot -> resident dense page, or -1 when empty
	slotOf []uint32 // dense page -> its unique slot
	n      int
}

// NewDenseDirectMapped returns an empty direct-mapped store of k slots
// for a compacted universe, with the slot hash drawn from the same
// 2-universal family (and seed consumption) as NewDirectMapped.
func NewDenseDirectMapped(k int, seed int64, universe int, origOf []model.PageID) (*DenseDirectMapped, error) {
	if k <= 0 {
		return nil, fmt.Errorf("hbm: capacity must be positive, got %d", k)
	}
	if universe < 0 {
		return nil, fmt.Errorf("hbm: universe must be >= 0, got %d", universe)
	}
	if origOf != nil && len(origOf) != universe {
		return nil, fmt.Errorf("hbm: origOf has %d entries for universe %d", len(origOf), universe)
	}
	h, err := directmap.NewUniversalHash(uint64(k), rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	s := &DenseDirectMapped{
		slots:  make([]int32, k),
		slotOf: make([]uint32, universe),
	}
	for i := range s.slots {
		s.slots[i] = -1
	}
	for d := range s.slotOf {
		op := model.PageID(d)
		if origOf != nil {
			op = origOf[d]
		}
		s.slotOf[d] = uint32(h.Hash(uint64(op)))
	}
	return s, nil
}

// Capacity returns k.
func (s *DenseDirectMapped) Capacity() int { return len(s.slots) }

// Len returns the number of occupied slots.
func (s *DenseDirectMapped) Len() int { return s.n }

// Contains reports whether the page is resident (in its slot).
func (s *DenseDirectMapped) Contains(page model.PageID) bool {
	return s.slots[s.slotOf[page]] == int32(page)
}

// Touch is a no-op: direct-mapped slots have no recency state.
func (s *DenseDirectMapped) Touch(model.PageID) {}

// EnsureRoom is a no-op: conflicts evict at insert time.
func (s *DenseDirectMapped) EnsureRoom(int) []model.PageID { return nil }

// Insert places the page in its slot, displacing the occupant if any.
func (s *DenseDirectMapped) Insert(page model.PageID) (model.PageID, bool, error) {
	i := s.slotOf[page]
	old := s.slots[i]
	if old == int32(page) {
		return 0, false, fmt.Errorf("hbm: page %d already resident", page)
	}
	s.slots[i] = int32(page)
	if old >= 0 {
		return model.PageID(old), true, nil
	}
	s.n++
	return 0, false, nil
}

// Kind describes the organisation (the same string as DirectMapped, so
// reports are unchanged by compaction).
func (s *DenseDirectMapped) Kind() string { return "direct-mapped" }
