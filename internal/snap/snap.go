// Package snap is the binary codec under the simulator's checkpoint
// files: a varint-based Writer/Reader pair with latched errors and a
// running FNV-64a checksum over every payload byte, so a truncated or
// bit-flipped snapshot is detected before (bounds checks during decode)
// or at (checksum trailer) the end of a restore — never by a panic.
//
// The encoding is deliberately simple: unsigned values are uvarints,
// signed values are zigzag varints, float64s are 8 little-endian bytes
// of their IEEE-754 bits, and bools are one byte. Sections of a snapshot
// are introduced by one-byte tags (see internal/core's checkpoint format
// table in DESIGN.md), which makes decode mismatches fail fast with a
// named section instead of silently misaligning the stream.
package snap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Saver is implemented by components that can serialise their dynamic
// state into a checkpoint. Errors are latched into the Writer.
type Saver interface {
	SaveState(w *Writer)
}

// Loader is the inverse of Saver: restore dynamic state from a
// checkpoint. Errors are latched into the Reader; implementations must
// bounds-check every decoded value (the stream may be corrupt) and must
// never panic on bad input.
type Loader interface {
	LoadState(r *Reader)
}

// Finisher is implemented by components whose restore has a
// non-constant-cost step (e.g. replaying a random stream to its saved
// position). LoadState must only record the cheap decoded state;
// FinishLoad performs the expensive part and is called only after the
// snapshot's checksum has been verified, so corrupt input can never
// drive an unbounded replay.
type Finisher interface {
	FinishLoad() error
}

// ErrChecksum reports a snapshot whose checksum trailer does not match
// its payload.
var ErrChecksum = errors.New("snap: checksum mismatch (corrupt or truncated snapshot)")

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Writer encodes a snapshot. All methods are no-ops once an error is
// latched; check Err (or the error returned by Finish) once at the end.
type Writer struct {
	w   *bufio.Writer
	sum uint64
	err error
	buf [binary.MaxVarintLen64]byte
}

// NewWriter starts a snapshot on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w), sum: fnvOffset}
}

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	for _, b := range p {
		w.sum = (w.sum ^ uint64(b)) * fnvPrime
	}
	if _, err := w.w.Write(p); err != nil {
		w.err = err
	}
}

// Raw writes p verbatim (still checksummed).
func (w *Writer) Raw(p []byte) { w.write(p) }

// Tag writes a one-byte section tag.
func (w *Writer) Tag(t byte) { w.write([]byte{t}) }

// U64 writes an unsigned varint.
func (w *Writer) U64(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	w.write(w.buf[:n])
}

// I64 writes a signed (zigzag) varint.
func (w *Writer) I64(v int64) {
	n := binary.PutVarint(w.buf[:], v)
	w.write(w.buf[:n])
}

// Int writes a non-negative int as an unsigned varint — the encoding
// counterpart of Reader.Len. Negative values latch an error.
func (w *Writer) Int(v int) {
	if v < 0 {
		w.Fail(fmt.Errorf("snap: negative count %d", v))
		return
	}
	w.U64(uint64(v))
}

// Bool writes one byte, 0 or 1.
func (w *Writer) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.write([]byte{b})
}

// F64 writes the IEEE-754 bits of v, little-endian.
func (w *Writer) F64(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	w.write(b[:])
}

// Fail latches an error (e.g. "component does not support checkpointing").
func (w *Writer) Fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// Err returns the first error latched so far.
func (w *Writer) Err() error { return w.err }

// Finish appends the checksum trailer (8 fixed little-endian bytes over
// everything written so far, themselves unhashed), flushes, and returns
// the first error encountered.
func (w *Writer) Finish() error {
	if w.err != nil {
		return w.err
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], w.sum)
	if _, err := w.w.Write(b[:]); err != nil {
		return err
	}
	return w.w.Flush()
}

// Reader decodes a snapshot. All getters return zero values once an
// error is latched; check Err after each section (or rely on the final
// Verify). Decoders must bounds-check with the limits the owner set.
type Reader struct {
	r   *bufio.Reader
	sum uint64
	err error

	// Decode-time limits, set by the snapshot's owner before handing the
	// Reader to component Loaders: the core count and dense-page universe
	// of the simulation being restored. Limits of 0 mean "no pages" /
	// "no cores" respectively — a page or core index is valid only below
	// its limit.
	MaxCores uint64
	MaxPages uint64
}

// NewReader starts decoding a snapshot from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r), sum: fnvOffset}
}

// ReadByte implements io.ByteReader over the checksummed stream.
func (r *Reader) ReadByte() (byte, error) {
	if r.err != nil {
		return 0, r.err
	}
	b, err := r.r.ReadByte()
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		r.err = err
		return 0, err
	}
	r.sum = (r.sum ^ uint64(b)) * fnvPrime
	return b, nil
}

func (r *Reader) read(p []byte) bool {
	if r.err != nil {
		return false
	}
	if _, err := io.ReadFull(r.r, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		r.err = err
		return false
	}
	for _, b := range p {
		r.sum = (r.sum ^ uint64(b)) * fnvPrime
	}
	return true
}

// Raw reads len(p) verbatim bytes.
func (r *Reader) Raw(p []byte) { r.read(p) }

// Tag consumes a one-byte section tag and fails unless it matches want.
func (r *Reader) Tag(want byte, section string) {
	b, err := r.ReadByte()
	if err != nil {
		return
	}
	if b != want {
		r.Failf("snap: bad tag 0x%02x for section %q (want 0x%02x)", b, section, want)
	}
}

// U64 reads an unsigned varint.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r)
	if err != nil && r.err == nil {
		r.err = err
	}
	return v
}

// I64 reads a signed (zigzag) varint.
func (r *Reader) I64() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r)
	if err != nil && r.err == nil {
		r.err = err
	}
	return v
}

// Int reads an int written by Writer.Int; prefer Len, which also
// enforces an upper bound.
func (r *Reader) Int() int { return int(r.U64()) }

// Bool reads one byte and fails on anything but 0 or 1.
func (r *Reader) Bool() bool {
	b, err := r.ReadByte()
	if err != nil {
		return false
	}
	if b > 1 {
		r.Failf("snap: bad bool byte 0x%02x", b)
		return false
	}
	return b == 1
}

// F64 reads the IEEE-754 bits written by Writer.F64.
func (r *Reader) F64() float64 {
	var b [8]byte
	if !r.read(b[:]) {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
}

// Len reads a non-negative count and fails when it exceeds max — the
// guard that keeps corrupt snapshots from driving huge allocations or
// replays before the checksum is reached.
func (r *Reader) Len(max int, what string) int {
	v := r.U64()
	if r.err != nil {
		return 0
	}
	if max < 0 || v > uint64(max) {
		r.Failf("snap: %s count %d exceeds limit %d", what, v, max)
		return 0
	}
	return int(v)
}

// Core reads a core index and fails when it is out of range.
func (r *Reader) Core() uint64 {
	v := r.U64()
	if r.err == nil && v >= r.MaxCores {
		r.Failf("snap: core index %d out of range (cores: %d)", v, r.MaxCores)
		return 0
	}
	return v
}

// Page reads a dense page ID and fails when it is out of range.
func (r *Reader) Page() uint64 {
	v := r.U64()
	if r.err == nil && v >= r.MaxPages {
		r.Failf("snap: page %d out of range (universe: %d)", v, r.MaxPages)
		return 0
	}
	return v
}

// Fail latches an error.
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Failf latches a formatted error.
func (r *Reader) Failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// Err returns the first error latched so far.
func (r *Reader) Err() error { return r.err }

// Verify consumes the checksum trailer and compares it to the running
// sum over everything read, returning the latched error or ErrChecksum.
func (r *Reader) Verify() error {
	if r.err != nil {
		return r.err
	}
	want := r.sum // capture before the (unhashed) trailer read
	var b [8]byte
	if _, err := io.ReadFull(r.r, b[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		r.err = err
		return err
	}
	if binary.LittleEndian.Uint64(b[:]) != want {
		r.err = ErrChecksum
		return ErrChecksum
	}
	return nil
}
