package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// retryAfterSeconds is the Retry-After hint attached to 429 responses.
// The queue drains at job granularity, so "soon" is the honest answer;
// clients should treat it as a backoff floor, not a promise.
const retryAfterSeconds = 1

// Handler returns the job API:
//
//	POST   /jobs             submit a job (Spec JSON) -> 202 + View
//	GET    /jobs             list all jobs            -> 200 + []View
//	GET    /jobs/{id}        one job, spec + result   -> 200 + View
//	DELETE /jobs/{id}        cancel                   -> 200 + View
//	GET    /jobs/{id}/events live SSE progress stream
//
// Error mapping: invalid specs are 400, unknown IDs 404, cancelling a
// finished job 409, a full admission queue 429 with Retry-After, and a
// draining service 503.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // nothing useful to do with a failed write to a gone client
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	v, err := s.SubmitTraced(spec, r.Header.Get("traceparent"))
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusAccepted, v)
	}
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func jobID(r *http.Request) (uint64, error) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil || id == 0 {
		return 0, fmt.Errorf("invalid job id %q", r.PathValue("id"))
	}
	return id, nil
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	v, ok := s.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	v, err := s.Cancel(id)
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrTerminal):
		writeError(w, http.StatusConflict, err)
	default:
		writeJSON(w, http.StatusOK, v)
	}
}

// handleEvents streams a job's updates as Server-Sent Events: one
// `event: update` per state or progress change, ending after the
// terminal event (or when the client goes away). Slow clients may miss
// intermediate progress events — the channel drops rather than blocks —
// but never the terminal one, which is re-checked from the job itself.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ch, initial, ok := s.subscribe(id)
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	defer s.unsubscribe(id, ch)
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func(v View) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: update\ndata: %s\n\n", data); err != nil {
			return false
		}
		if canFlush {
			fl.Flush()
		}
		return true
	}
	if !send(initial) || initial.State.Terminal() {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case v, open := <-ch:
			if !open {
				return
			}
			if !send(v) || v.State.Terminal() {
				return
			}
		}
	}
}

// subscribe registers a live-update channel for a job and returns it
// with the job's current view. Progress events are dropped (not queued
// unboundedly) for slow consumers; terminal events always land because
// the channel has headroom and nothing follows them.
func (s *Service) subscribe(id uint64) (chan View, View, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, View{}, false
	}
	ch := make(chan View, 16)
	j.subs[ch] = struct{}{}
	return ch, s.viewLocked(j, false, false), true
}

func (s *Service) unsubscribe(id uint64, ch chan View) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		delete(j.subs, ch)
	}
}

// notifyLocked fans a job's fresh view out to SSE subscribers and the
// OnUpdate hook. Callers hold s.mu; OnUpdate therefore must not call
// back into the Service (track state locally instead — see
// cmd/hbmserved for the pattern).
func (s *Service) notifyLocked(j *job) {
	if len(j.subs) == 0 && s.opts.OnUpdate == nil {
		return
	}
	v := s.viewLocked(j, false, false)
	for ch := range j.subs {
		select {
		case ch <- v:
		default: // slow subscriber: drop this update, not the service
		}
	}
	if s.opts.OnUpdate != nil {
		s.opts.OnUpdate(v)
	}
}
