package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"hbmsim/internal/experiments"
	"hbmsim/internal/metrics"
	"hbmsim/internal/resultcache"
	"hbmsim/internal/sweep"
	"hbmsim/internal/trace"
	"hbmsim/internal/tracing"
)

// Service errors surfaced to submitters.
var (
	// ErrQueueFull reports a full admission queue; retry later (the HTTP
	// layer converts this to 429 + Retry-After).
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrDraining reports a service in graceful shutdown that no longer
	// admits jobs (HTTP 503).
	ErrDraining = errors.New("serve: draining, not accepting jobs")
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("serve: no such job")
	// ErrTerminal reports a cancel of an already-finished job.
	ErrTerminal = errors.New("serve: job already finished")
)

// Cancellation causes; which one cancelled a job's context decides its
// terminal state (or, for shutdown, the absence of one).
var (
	errCancelled = errors.New("cancelled by request")
	errShutdown  = errors.New("service shutting down")
)

// Options configures a Service. Zero values select the documented
// defaults.
type Options struct {
	// Dir is the state directory: the job manifest plus per-job sweep
	// journals and checkpoint snapshots live here. Required.
	Dir string
	// Workers bounds how many jobs run concurrently (default 2). Each
	// sweep or experiment job additionally fans out over JobWorkers
	// goroutines internally.
	Workers int
	// QueueCap bounds the admission queue: submissions beyond this many
	// queued (not yet running) jobs are rejected with ErrQueueFull
	// (default 64). Crash recovery re-enqueues unfinished jobs without
	// counting against the bound — restarts must never drop work.
	QueueCap int
	// JobWorkers is the default per-job sweep parallelism (default
	// GOMAXPROCS). A job's Spec.Workers overrides it.
	JobWorkers int
	// CheckpointEvery is the default snapshot cadence for sim jobs in
	// ticks (default 4194304, ~0.2s of simulated work); a job's
	// Spec.CheckpointEveryTicks overrides it.
	CheckpointEvery uint64
	// Metrics, when non-nil, receives the serve_* instruments (queue
	// depth, running jobs, admission/outcome counters, job wall time)
	// plus the sweep_* instruments of every job's internal sweeps.
	Metrics *metrics.Registry
	// TrackOptGap attaches a live optimality tracker to every sim job:
	// the competitive_ratio gauge and optgap_* instruments land in
	// Metrics, and each job's View carries an OptGap snapshot (GET
	// /jobs/{id} and the SSE stream). The shared gauges are
	// last-writer-wins across concurrently running sim jobs; the per-job
	// view is the authoritative figure.
	TrackOptGap bool
	// OptGapWindow is the optimality snapshot cadence in ticks (0 selects
	// the tracker default, 4096).
	OptGapWindow uint64
	// OnUpdate, when non-nil, is called after every job state or
	// progress change with the job's fresh view. Calls may be concurrent
	// across jobs; keep it cheap.
	OnUpdate func(View)
	// Tracer, when non-nil, opens one span tree per job — admit,
	// queue-wait, run, checkpoint writes, journal fsyncs — and each job's
	// View carries its trace ID so /debug/trace can resolve it. A nil
	// Tracer makes every instrumented path a no-op.
	Tracer *tracing.Tracer
	// FlightRecorder, when non-nil, is dumped to Dir ("flightrec-*.json")
	// when a job panics, before the panic is converted into the job's
	// error — the post-mortem for the one failure mode that leaves no
	// journal trail.
	FlightRecorder *tracing.FlightRecorder
	// Cache, when non-nil, answers identical resubmissions from the
	// content-addressed result cache: after a job's fingerprint is
	// established, a cached payload under that fingerprint is returned
	// without simulating (the view carries cache_hit and the
	// serve_cache_hit_total counter moves); successful results are stored
	// back on completion.
	Cache *resultcache.Store
	// Peers are base URLs of other hbmserved instances. When non-empty,
	// multi-point sweep jobs are sharded across them through the HTTP job
	// API (internal/shard) instead of running only on this node; each
	// sub-job carries no_shard so peers never re-shard. Sim and experiment
	// jobs always run locally.
	Peers []string
	// StealAfter is the straggler budget for sharded sweeps: a shard
	// running longer than this on one peer may be raced onto an idle peer
	// (default 30s).
	StealAfter time.Duration
	// ShardRows is the sharded-sweep shard size in points (default 4).
	ShardRows int

	// testHookBeforeJob, when set, runs in the worker just before a job
	// executes — tests use it to hold a worker busy deterministically.
	testHookBeforeJob func(*job)
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.JobWorkers <= 0 {
		o.JobWorkers = runtime.GOMAXPROCS(0)
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 4 << 20
	}
	if o.StealAfter <= 0 {
		o.StealAfter = 30 * time.Second
	}
	if o.ShardRows <= 0 {
		o.ShardRows = 4
	}
	return o
}

// job is the service's internal job state. Mutable fields are guarded by
// the owning Service's mutex.
type job struct {
	id          uint64
	spec        *Spec
	fingerprint uint64
	hasFP       bool // a "start" record exists: fingerprint is meaningful (even when zero)
	state       State
	errMsg      string
	payload     *Payload
	recovered   bool
	cacheHit    bool // answered from the result cache, not simulated

	submitted time.Time
	started   time.Time
	finished  time.Time

	progress  sweep.Progress
	hasProg   bool
	optgap    *OptGapView
	cancel    context.CancelCauseFunc // non-nil while running
	cancelled bool                    // user cancel requested

	// linkTrace/linkSpan, when linkTrace is non-zero, continue a remote
	// trace (the submitter sent a sampled W3C traceparent header): the
	// job's root span is opened with StartLinked instead of StartRoot, so
	// a sharded sweep's sub-jobs join the coordinator's trace tree.
	linkTrace tracing.TraceID
	linkSpan  tracing.SpanID

	// Tracing state: traceCtx carries the job's root span for child spans;
	// enqueued timestamps the latest queue entry (admission or recovery)
	// for the queue-wait histogram. All are written before the job is
	// visible to workers and read-only afterwards.
	traceCtx context.Context
	span     tracing.Span // serve.job root, ends with the terminal state
	qspan    tracing.Span // serve.queue_wait, ends at worker pickup
	enqueued time.Time

	subs map[chan View]struct{}
}

// instruments bundles the serve_* metrics; zero-valued (from a nil
// registry) instruments are no-ops.
type instruments struct {
	submitted, rejected, recovered       *metrics.Counter
	started, finished, failed, cancelled *metrics.Counter
	cacheHit, cacheMiss                  *metrics.Counter
	queueDepth, running, workers         *metrics.Gauge
	jobSeconds                           *metrics.Histogram
	queueWait, checkpointWrite           *metrics.Histogram
}

func newInstruments(reg *metrics.Registry) instruments {
	return instruments{
		submitted: reg.Counter("serve_jobs_submitted_total", "jobs accepted into the queue"),
		rejected:  reg.Counter("serve_jobs_rejected_total", "submissions rejected with backpressure (queue full)"),
		recovered: reg.Counter("serve_jobs_recovered_total", "unfinished jobs re-enqueued by crash recovery"),
		started:   reg.Counter("serve_jobs_started_total", "jobs handed to a worker"),
		finished:  reg.Counter("serve_jobs_finished_total", "jobs reaching a terminal state"),
		failed:    reg.Counter("serve_jobs_failed_total", "jobs finishing in state failed"),
		cancelled: reg.Counter("serve_jobs_cancelled_total", "jobs finishing in state cancelled"),
		cacheHit: reg.Counter("serve_cache_hit_total",
			"jobs answered from the content-addressed result cache without simulating"),
		cacheMiss: reg.Counter("serve_cache_miss_total",
			"cache-enabled jobs whose fingerprint had no cached payload"),
		queueDepth: reg.Gauge("serve_queue_depth",
			"jobs admitted but not yet running (admission rejects past the queue bound)"),
		running: reg.Gauge("serve_jobs_running", "jobs currently executing on a worker"),
		workers: reg.Gauge("serve_workers", "size of the job worker pool"),
		jobSeconds: reg.Histogram("serve_job_seconds", "per-job wall time in seconds",
			metrics.ExpBuckets(0.001, 2, 24)),
		// 0.1ms .. ~14min: queue waits span "instant pickup" to "stuck
		// behind a paper-scale sweep".
		queueWait: reg.Histogram("serve_queue_wait_seconds",
			"seconds jobs spend admitted but not yet running",
			metrics.ExpBuckets(0.0001, 2, 24)),
		checkpointWrite: reg.Histogram("serve_checkpoint_write_seconds",
			"wall seconds per atomic sim checkpoint write (serialize + fsync + rename)",
			metrics.ExpBuckets(0.0001, 2, 20)),
	}
}

// Service is the job service. Construct with Open, which also performs
// crash recovery; stop with Drain (graceful) and/or Close.
type Service struct {
	opts Options
	man  *manifest
	ins  instruments

	baseCtx    context.Context
	baseCancel context.CancelCauseFunc

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[uint64]*job
	order    []uint64
	queue    []*job
	nextID   uint64
	runningN int
	draining bool
	closed   bool

	wg sync.WaitGroup
}

// Open opens (creating if needed) the state directory, replays the job
// manifest, re-enqueues every unfinished job — rewinding interrupted
// running jobs to queued so they resume from their journal or snapshot —
// and starts the worker pool.
func Open(opts Options) (*Service, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("serve: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	man, recs, err := openManifest(filepath.Join(opts.Dir, "jobs.jsonl"))
	if err != nil {
		return nil, err
	}
	s := &Service{
		opts:   opts,
		man:    man,
		ins:    newInstruments(opts.Metrics),
		jobs:   make(map[uint64]*job),
		nextID: 1,
	}
	s.cond = sync.NewCond(&s.mu)
	s.baseCtx, s.baseCancel = context.WithCancelCause(context.Background())
	s.replay(recs)
	s.ins.workers.Set(int64(opts.Workers))
	s.ins.queueDepth.Set(int64(len(s.queue)))
	for w := 0; w < opts.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// replay folds the manifest records into in-memory jobs and re-enqueues
// the unfinished ones in submission order.
func (s *Service) replay(recs []manifestRecord) {
	for _, rec := range recs {
		switch rec.Op {
		case "submit":
			if rec.Spec == nil {
				continue
			}
			j := &job{
				id:        rec.ID,
				spec:      rec.Spec,
				state:     StateQueued,
				submitted: time.Unix(rec.Unix, 0),
				subs:      make(map[chan View]struct{}),
			}
			s.jobs[j.id] = j
			s.order = append(s.order, j.id)
			if j.id >= s.nextID {
				s.nextID = j.id + 1
			}
		case "start":
			if j := s.jobs[rec.ID]; j != nil && rec.Fingerprint != nil {
				j.fingerprint = uint64(*rec.Fingerprint)
				j.hasFP = true
			}
		case "finish":
			if j := s.jobs[rec.ID]; j != nil {
				j.state = rec.State
				j.errMsg = rec.Error
				j.payload = rec.Result
				j.cacheHit = rec.CacheHit
				j.finished = time.Unix(rec.Unix, 0)
			}
		}
	}
	for _, id := range s.order {
		j := s.jobs[id]
		if j.state.Terminal() {
			continue
		}
		j.state = StateQueued
		j.recovered = true
		s.queue = append(s.queue, j)
		s.ins.recovered.Inc()
		s.startJobTrace(j, true)
		_, rsp := tracing.StartSpan(j.traceCtx, "serve.recover")
		rsp.SetAttrBool("resumable", j.hasFP)
		rsp.End()
		s.enterQueueTrace(j)
		slog.InfoContext(j.traceCtx, "recovered unfinished job", "job", j.id,
			"kind", j.spec.Kind, "resumable", j.hasFP)
	}
}

// startJobTrace opens the job's root span ("serve.job"). The root ends
// with the job's terminal state in finishLocked — or at shutdown rewind,
// since the restarted process opens a fresh root for the resumed run
// (marked recovered=true, so resumed lifecycles are visibly distinct).
func (s *Service) startJobTrace(j *job, recovered bool) {
	var ctx context.Context
	var sp tracing.Span
	if !j.linkTrace.IsZero() {
		ctx, sp = s.opts.Tracer.StartLinked(context.Background(), j.linkTrace, j.linkSpan, "serve.job")
	} else {
		ctx, sp = s.opts.Tracer.StartRoot(context.Background(), "serve.job")
	}
	sp.SetAttrUint("job", j.id)
	sp.SetAttr("kind", string(j.spec.Kind))
	if j.spec.Name != "" {
		sp.SetAttr("name", j.spec.Name)
	}
	if recovered {
		sp.SetAttrBool("recovered", true)
	}
	j.traceCtx, j.span = ctx, sp
}

// enterQueueTrace marks the job queued: the queue-wait span opens and
// the pickup clock (serve_queue_wait_seconds) starts.
func (s *Service) enterQueueTrace(j *job) {
	j.enqueued = time.Now()
	_, j.qspan = tracing.StartSpan(j.traceCtx, "serve.queue_wait")
}

// Submit validates and admits one job: the spec is journaled to the
// manifest (fsynced) before the ID is returned, so an acknowledged job
// survives any crash. Returns ErrQueueFull when the admission queue is
// at capacity and ErrDraining during graceful shutdown.
func (s *Service) Submit(spec Spec) (View, error) {
	return s.SubmitTraced(spec, "")
}

// SubmitTraced is Submit continuing a remote trace: traceparent, when a
// valid sampled W3C header value (the HTTP layer passes the submitter's
// header through), links the job's root span under the remote caller's
// span — how a sharded sweep's sub-jobs appear inside the coordinator's
// trace. An empty or malformed value degrades to a plain Submit.
func (s *Service) SubmitTraced(spec Spec, traceparent string) (View, error) {
	if err := spec.Validate(); err != nil {
		return View{}, err
	}
	var linkTrace tracing.TraceID
	var linkSpan tracing.SpanID
	if traceparent != "" {
		if tr, sp, flags, err := tracing.ParseTraceparent(traceparent); err == nil && flags&tracing.FlagSampled != 0 {
			linkTrace, linkSpan = tr, sp
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.draining {
		return View{}, ErrDraining
	}
	if len(s.queue) >= s.opts.QueueCap {
		s.ins.rejected.Inc()
		return View{}, ErrQueueFull
	}
	sp := spec // private copy
	j := &job{
		id:        s.nextID,
		spec:      &sp,
		state:     StateQueued,
		submitted: time.Now(),
		linkTrace: linkTrace,
		linkSpan:  linkSpan,
		subs:      make(map[chan View]struct{}),
	}
	s.startJobTrace(j, false)
	_, asp := tracing.StartSpan(j.traceCtx, "serve.admit")
	if err := s.man.append(manifestRecord{
		Op: "submit", ID: j.id, Spec: j.spec, Unix: j.submitted.Unix(),
	}); err != nil {
		asp.EndErr(err)
		j.span.EndErr(err)
		return View{}, err
	}
	asp.End()
	s.enterQueueTrace(j)
	s.nextID++
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.queue = append(s.queue, j)
	s.ins.submitted.Inc()
	s.ins.queueDepth.Set(int64(len(s.queue)))
	s.cond.Signal()
	v := s.viewLocked(j, false, false)
	s.notifyLocked(j)
	return v, nil
}

// Get returns one job's view, including its spec and (when finished) its
// result payload.
func (s *Service) Get(id uint64) (View, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return View{}, false
	}
	return s.viewLocked(j, true, true), true
}

// List returns every job's summary view (no specs or result payloads),
// ordered by ID.
func (s *Service) List() []View {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]View, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.viewLocked(s.jobs[id], false, false))
	}
	sortViews(out)
	return out
}

// Cancel cancels a job: a queued job is finalised as cancelled without
// running, a running job's context is cancelled (it reaches the
// cancelled state when its worker unwinds). Cancelling a finished job
// returns ErrTerminal.
func (s *Service) Cancel(id uint64) (View, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return View{}, ErrNotFound
	}
	switch {
	case j.state.Terminal():
		return s.viewLocked(j, false, false), ErrTerminal
	case j.state == StateQueued:
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.ins.queueDepth.Set(int64(len(s.queue)))
		j.qspan.End()
		j.span.SetAttr("cancel_cause", "cancel")
		s.finishLocked(j, StateCancelled, errCancelled.Error(), nil)
	default: // running
		j.cancelled = true
		if j.cancel != nil {
			j.cancel(errCancelled)
		}
	}
	return s.viewLocked(j, false, false), nil
}

// Stats is a point-in-time census of jobs by state.
type Stats struct {
	Queued, Running, Done, Failed, Cancelled int
}

// Total returns the number of jobs ever submitted (and still known).
func (st Stats) Total() int {
	return st.Queued + st.Running + st.Done + st.Failed + st.Cancelled
}

// Stats counts jobs by state.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st Stats
	for _, j := range s.jobs {
		switch j.state {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		case StateCancelled:
			st.Cancelled++
		}
	}
	return st
}

// Drain performs graceful shutdown: admission stops immediately
// (Submit returns ErrDraining), queued and running jobs keep executing,
// and Drain returns when everything finished — or, if ctx expires
// first, after interrupting the in-flight jobs WITHOUT terminal
// manifest records, so the next Open resumes them from their journals
// and snapshots. Call Close afterwards to stop the workers and release
// the manifest.
func (s *Service) Drain(ctx context.Context) error {
	_, dsp := s.opts.Tracer.StartRoot(context.Background(), "serve.drain")
	s.mu.Lock()
	s.draining = true
	dsp.SetAttrInt("queued", int64(len(s.queue)))
	dsp.SetAttrInt("running", int64(s.runningN))
	s.cond.Broadcast()
	s.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		s.mu.Lock()
		for (len(s.queue) > 0 || s.runningN > 0) && !s.closed {
			s.cond.Wait()
		}
		s.mu.Unlock()
		close(idle)
	}()
	select {
	case <-idle:
		dsp.End()
		return nil
	case <-ctx.Done():
		// Interrupt in-flight work; jobs observe errShutdown and unwind
		// without finish records. The waiter above completes once the
		// workers return their jobs.
		s.baseCancel(errShutdown)
		<-idle
		err := fmt.Errorf("serve: drain interrupted: %w", context.Cause(ctx))
		dsp.EndErr(err)
		return err
	}
}

// Close hard-stops the service: running jobs are interrupted without
// terminal records (they resume on the next Open), workers exit, and
// the manifest is closed. Safe after Drain.
func (s *Service) Close() error {
	s.baseCancel(errShutdown)
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	return s.man.Close()
}

// worker pops queued jobs until the service closes.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		j := s.queue[0]
		s.queue = s.queue[1:]
		j.state = StateRunning
		j.started = time.Now()
		j.qspan.End()
		if !j.enqueued.IsZero() {
			s.ins.queueWait.Observe(j.started.Sub(j.enqueued).Seconds())
		}
		j.progress, j.hasProg = sweep.Progress{}, false
		s.runningN++
		s.ins.queueDepth.Set(int64(len(s.queue)))
		s.ins.running.Set(int64(s.runningN))
		s.ins.started.Inc()
		s.notifyLocked(j)
		s.mu.Unlock()

		s.run(j)

		s.mu.Lock()
		s.runningN--
		s.ins.running.Set(int64(s.runningN))
		s.cond.Broadcast() // wake Drain's waiter
		s.mu.Unlock()
	}
}

// run executes one job end to end: context setup, panic isolation,
// dispatch by kind, and terminal-state accounting. Shutdown interrupts
// leave the job queued with no terminal record — that is the crash/drain
// resume path.
func (s *Service) run(j *job) {
	ctx, cancel := context.WithCancelCause(s.baseCtx)
	var timeoutCancel context.CancelFunc
	if secs := j.spec.TimeoutSeconds; secs > 0 {
		ctx, timeoutCancel = context.WithTimeout(ctx, time.Duration(secs*float64(time.Second)))
	}
	s.mu.Lock()
	j.cancel = cancel
	if j.cancelled { // cancel arrived while the job sat queued->running
		cancel(errCancelled)
	}
	s.mu.Unlock()
	defer func() {
		cancel(nil)
		if timeoutCancel != nil {
			timeoutCancel()
		}
	}()

	// The cancellation context and the job's trace context are built
	// separately (cancellation descends from baseCtx, the span tree from
	// admission), so graft the root span on before opening the run span.
	runCtx, runSpan := tracing.StartSpan(tracing.ContextWithSpan(ctx, j.span), "serve.run")

	t0 := time.Now()
	payload, err := s.dispatch(runCtx, j)
	s.ins.jobSeconds.Observe(time.Since(t0).Seconds())
	runSpan.EndErr(err)

	cause := context.Cause(ctx)
	if err == nil && cause == nil {
		s.cacheStore(j, payload)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j.cancel = nil
	switch {
	case errors.Is(cause, errShutdown):
		// Interrupted by drain timeout or Close: rewind to queued with no
		// manifest record; the next Open re-enqueues and resumes the job.
		j.state = StateQueued
		j.started = time.Time{}
		j.span.SetAttr("cancel_cause", "shutdown")
		j.span.SetAttr("outcome", "interrupted")
		j.span.End()
		slog.InfoContext(j.traceCtx, "job interrupted by shutdown; will resume on restart", "job", j.id)
		s.notifyLocked(j)
	case errors.Is(cause, errCancelled):
		j.span.SetAttr("cancel_cause", "cancel")
		s.finishLocked(j, StateCancelled, errCancelled.Error(), payload)
	case errors.Is(cause, context.DeadlineExceeded):
		j.span.SetAttr("cancel_cause", "deadline")
		s.finishLocked(j, StateFailed,
			fmt.Sprintf("deadline exceeded after %gs", j.spec.TimeoutSeconds), payload)
	case err != nil:
		s.finishLocked(j, StateFailed, err.Error(), payload)
	default:
		s.finishLocked(j, StateDone, "", payload)
	}
}

// dispatch routes the job by kind, converting panics anywhere below into
// the job's error so one poisoned submission cannot take down the
// service.
func (s *Service) dispatch(ctx context.Context, j *job) (payload *Payload, err error) {
	defer func() {
		if p := recover(); p != nil {
			// Dump the flight recorder before the panic is flattened into the
			// job's error: open spans and recent logs from the moment of the
			// panic are exactly what the post-mortem needs.
			if fr := s.opts.FlightRecorder; fr != nil {
				if path, derr := fr.DumpToDir(s.opts.Dir, fmt.Sprintf("panic in job %d: %v", j.id, p)); derr == nil {
					slog.ErrorContext(ctx, "job panicked; flight recorder dumped", "job", j.id, "dump", path)
				} else {
					slog.ErrorContext(ctx, "job panicked; flight recorder dump failed", "job", j.id, "err", derr)
				}
			}
			payload, err = nil, fmt.Errorf("job panicked: %v\n%s", p, debug.Stack())
		}
	}()
	if hook := s.opts.testHookBeforeJob; hook != nil {
		hook(j)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch j.spec.Kind {
	case KindSim:
		return s.runSim(ctx, j)
	case KindSweep:
		return s.runSweep(ctx, j)
	case KindExperiment:
		return s.runExperiment(ctx, j)
	default:
		return nil, fmt.Errorf("unknown job kind %q", j.spec.Kind)
	}
}

// checkFingerprint verifies (or, on first start, records) the job's
// identity fingerprint. It guards the resume path: a recovered job whose
// spec no longer rebuilds the same workload/configs must not replay its
// journal or snapshot.
func (s *Service) checkFingerprint(j *job, wl *trace.Workload) error {
	fp, err := j.spec.Fingerprint(wl)
	if err != nil {
		return err
	}
	s.mu.Lock()
	prev, had := j.fingerprint, j.hasFP
	j.fingerprint, j.hasFP = fp, true
	s.mu.Unlock()
	j.span.SetAttr("fingerprint", fmt.Sprintf("%016x", fp))
	if had && prev != fp {
		return fmt.Errorf("fingerprint mismatch: job was journaled as %016x but its spec now rebuilds %016x; "+
			"refusing to resume (the workload generator or configuration changed across restarts)", prev, fp)
	}
	fpv := fpHex(fp)
	return s.man.append(manifestRecord{
		Op: "start", ID: j.id, Fingerprint: &fpv, Unix: time.Now().Unix(),
	})
}

// cacheGet consults the result cache under the job's fingerprint.
// Call after checkFingerprint succeeded; a hit marks the job cache_hit
// (surfaced in views, SSE, and the finish manifest record) and returns
// the decoded payload, skipping simulation entirely.
func (s *Service) cacheGet(j *job) (*Payload, bool) {
	if s.opts.Cache == nil {
		return nil, false
	}
	s.mu.Lock()
	fp, ok := j.fingerprint, j.hasFP
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	raw, hit, err := s.opts.Cache.Get(fp)
	if err != nil {
		slog.WarnContext(j.traceCtx, "result cache read failed; simulating", "job", j.id, "err", err)
	}
	var p Payload
	if hit && err == nil {
		if uerr := json.Unmarshal(raw, &p); uerr != nil {
			// Structurally valid entry, wrong shape: treat as a miss (the
			// store already checksummed the bytes, so this means a format
			// change, not corruption).
			slog.WarnContext(j.traceCtx, "cached payload undecodable; simulating", "job", j.id, "err", uerr)
			hit = false
		}
	}
	if !hit || err != nil {
		s.ins.cacheMiss.Inc()
		return nil, false
	}
	s.ins.cacheHit.Inc()
	s.mu.Lock()
	j.cacheHit = true
	s.mu.Unlock()
	j.span.SetAttrBool("cache_hit", true)
	slog.InfoContext(j.traceCtx, "job answered from result cache",
		"job", j.id, "fingerprint", fmt.Sprintf("%016x", fp))
	return &p, true
}

// cacheStore writes a successful payload back to the result cache.
// Failures only log — the job already has its answer.
func (s *Service) cacheStore(j *job, payload *Payload) {
	if s.opts.Cache == nil || payload == nil {
		return
	}
	s.mu.Lock()
	fp, ok, hit := j.fingerprint, j.hasFP, j.cacheHit
	s.mu.Unlock()
	if !ok || hit {
		return
	}
	raw, err := json.Marshal(payload)
	if err == nil {
		err = s.opts.Cache.Put(fp, raw)
	}
	if err != nil {
		slog.WarnContext(j.traceCtx, "result cache write failed", "job", j.id, "err", err)
	}
}

// jobFile returns the job's per-job state file path.
func (s *Service) jobFile(id uint64, suffix string) string {
	return filepath.Join(s.opts.Dir, fmt.Sprintf("job-%d%s", id, suffix))
}

// pushProgress records a live progress update and fans it out to
// subscribers and OnUpdate.
func (s *Service) pushProgress(j *job, p sweep.Progress) {
	s.pushSimProgress(j, p, nil)
}

// pushSimProgress is pushProgress plus the sim job's live optimality
// snapshot, recorded under the same lock so SSE subscribers see both
// move together. The view pointer is replaced wholesale, never mutated,
// so readers may keep it outside the lock.
func (s *Service) pushSimProgress(j *job, p sweep.Progress, og *OptGapView) {
	s.mu.Lock()
	j.progress, j.hasProg = p, true
	if og != nil {
		j.optgap = og
	}
	s.notifyLocked(j)
	s.mu.Unlock()
}

// runSweep executes a sweep job: every point through sweep.RunContext on
// a bounded pool, with completed rows journaled per job. Resume is
// always on — a fresh job's journal is empty, so the first run is
// unaffected, and a recovered job re-runs only unfinished points.
func (s *Service) runSweep(ctx context.Context, j *job) (*Payload, error) {
	wl, err := j.spec.Workload.Build()
	if err != nil {
		return nil, err
	}
	if err := s.checkFingerprint(j, wl); err != nil {
		return nil, err
	}
	if p, ok := s.cacheGet(j); ok {
		return p, nil
	}
	jobs := make([]sweep.Job, len(j.spec.Points))
	for i := range j.spec.Points {
		cfg, err := j.spec.Points[i].Config.Config()
		if err != nil {
			return nil, err
		}
		jobs[i] = sweep.Job{Name: j.spec.PointName(i), Config: cfg, Workload: wl}
	}
	if len(s.opts.Peers) > 0 && !j.spec.NoShard && len(jobs) > 1 {
		return s.runShardedSweep(ctx, j, jobs)
	}
	jnl, err := sweep.OpenJournal(s.jobFile(j.id, ".jnl"))
	if err != nil {
		return nil, err
	}
	defer jnl.Close()
	workers := j.spec.Workers
	if workers <= 0 {
		workers = s.opts.JobWorkers
	}
	rows := sweep.RunContext(ctx, jobs, sweep.Options{
		Workers:    workers,
		OnProgress: func(p sweep.Progress) { s.pushProgress(j, p) },
		Metrics:    s.opts.Metrics,
		Journal:    jnl,
		Resume:     true,
	})
	if cause := context.Cause(ctx); cause != nil {
		return nil, cause
	}
	payload := &Payload{Rows: make([]RowResult, len(rows))}
	for i, r := range rows {
		payload.Rows[i] = RowResult{Name: r.Job.Name, Result: r.Result}
		if r.Err != nil {
			payload.Rows[i].Error = r.Err.Error()
		}
	}
	return payload, nil
}

// runExperiment executes a registered experiment with the job's context,
// journal, and progress plumbed through experiments.Options.
func (s *Service) runExperiment(ctx context.Context, j *job) (*Payload, error) {
	if err := s.checkFingerprint(j, nil); err != nil {
		return nil, err
	}
	if p, ok := s.cacheGet(j); ok {
		return p, nil
	}
	o := experiments.Default()
	if j.spec.Full {
		o = experiments.Full()
	}
	if j.spec.Seed != 0 {
		o.Seed = j.spec.Seed
	}
	o.Workers = j.spec.Workers
	if o.Workers <= 0 {
		o.Workers = s.opts.JobWorkers
	}
	o.Ctx = ctx
	o.OnProgress = func(p sweep.Progress) { s.pushProgress(j, p) }
	o.Metrics = s.opts.Metrics
	jnl, err := sweep.OpenJournal(s.jobFile(j.id, ".jnl"))
	if err != nil {
		return nil, err
	}
	defer jnl.Close()
	o.Journal = jnl
	o.Resume = true

	out, err := experiments.Run(j.spec.Experiment, o)
	if cause := context.Cause(ctx); cause != nil {
		return nil, cause
	}
	if err != nil {
		return nil, err
	}
	res := &ExperimentResult{
		ID:         out.ID,
		Title:      out.Title,
		PaperClaim: out.PaperClaim,
		Headline:   out.Headline,
	}
	for _, t := range out.Tables {
		var sb strings.Builder
		if err := t.WriteCSV(&sb); err != nil {
			return nil, err
		}
		res.Tables = append(res.Tables, TableResult{Title: t.Title, CSV: sb.String()})
	}
	return &Payload{Experiment: res}, nil
}

// finishLocked records a terminal outcome: manifest first (fsynced),
// then in-memory state, metrics, and subscriber notification. Callers
// hold s.mu.
func (s *Service) finishLocked(j *job, state State, errMsg string, payload *Payload) {
	j.finished = time.Now()
	if err := s.man.append(manifestRecord{
		Op: "finish", ID: j.id, State: state, Error: errMsg,
		Result: payload, CacheHit: j.cacheHit, Unix: j.finished.Unix(),
	}); err != nil {
		// A manifest that stopped accepting writes means terminal states
		// no longer survive restarts; surface it on the job itself.
		state = StateFailed
		if errMsg == "" {
			errMsg = err.Error()
		} else {
			errMsg = fmt.Sprintf("%s (and recording the outcome failed: %v)", errMsg, err)
		}
		slog.ErrorContext(j.traceCtx, "recording job outcome failed", "job", j.id, "err", err)
	}
	j.state = state
	j.errMsg = errMsg
	j.payload = payload
	s.ins.finished.Inc()
	switch state {
	case StateFailed:
		s.ins.failed.Inc()
	case StateCancelled:
		s.ins.cancelled.Inc()
	}
	j.span.SetAttr("outcome", string(state))
	if errMsg != "" {
		j.span.EndErr(errors.New(errMsg))
	} else {
		j.span.End()
	}
	slog.InfoContext(j.traceCtx, "job finished", "job", j.id, "state", state,
		"elapsed", time.Since(j.started).Round(time.Millisecond))
	s.notifyLocked(j)
}

// viewLocked renders a job's view. Callers hold s.mu.
func (s *Service) viewLocked(j *job, withSpec, withResult bool) View {
	v := View{
		ID:        j.id,
		Name:      j.spec.Name,
		Kind:      j.spec.Kind,
		State:     j.state,
		Error:     j.errMsg,
		Recovered: j.recovered,
		CacheHit:  j.cacheHit,
	}
	if j.span.Sampled() {
		v.TraceID = j.span.Trace().String()
	}
	if !j.submitted.IsZero() {
		v.SubmittedUnix = j.submitted.Unix()
	}
	if !j.started.IsZero() {
		v.StartedUnix = j.started.Unix()
	}
	if !j.finished.IsZero() {
		v.FinishedUnix = j.finished.Unix()
	}
	if j.hasProg {
		v.Progress = &ProgressView{
			Completed:      j.progress.Completed,
			Total:          j.progress.Total,
			Failed:         j.progress.Failed,
			ElapsedSeconds: j.progress.Elapsed.Seconds(),
			ETASeconds:     j.progress.ETA.Seconds(),
		}
	}
	v.OptGap = j.optgap
	if withSpec {
		v.Spec = j.spec
	}
	if withResult {
		v.Result = j.payload
	}
	return v
}

// checkpointEvery returns the job's snapshot cadence.
func (s *Service) checkpointEvery(j *job) uint64 {
	if j.spec.CheckpointEveryTicks > 0 {
		return j.spec.CheckpointEveryTicks
	}
	return s.opts.CheckpointEvery
}
