package serve

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"hbmsim/internal/metrics"
)

// startPeer opens a serve.Service in its own state directory and mounts
// its job API on an httptest server — an in-process hbmserved peer.
func startPeer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	s := openTestService(t, t.TempDir(), nil)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() { srv.Close(); s.Close() })
	return s, srv
}

// TestShardedSweepMatchesSingleNode is the tentpole's sharding contract
// at the package level: a sweep sharded across two peers produces the
// same rows AND a byte-identical journal as the same spec run on a
// single node with one worker (the canonical order).
func TestShardedSweepMatchesSingleNode(t *testing.T) {
	spec := testSweepSpec(5)
	spec.Workers = 1

	// Reference: single node, one worker -> journal rows in point order.
	refDir := t.TempDir()
	ref := openTestService(t, refDir, nil)
	rv, err := ref.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	refView := waitState(t, ref, rv.ID, StateDone)
	ref.Close()
	refJnl, err := os.ReadFile(filepath.Join(refDir, "job-1.jnl"))
	if err != nil {
		t.Fatal(err)
	}

	// Sharded: coordinator with two peers, 2 points per shard.
	_, peer1 := startPeer(t)
	_, peer2 := startPeer(t)
	coordDir := t.TempDir()
	reg := metrics.NewRegistry()
	coord := openTestService(t, coordDir, func(o *Options) {
		o.Peers = []string{peer1.URL, peer2.URL}
		o.ShardRows = 2
		o.Metrics = reg
	})
	defer coord.Close()
	cv, err := coord.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	gotView := waitState(t, coord, cv.ID, StateDone)

	if len(gotView.Result.Rows) != len(refView.Result.Rows) {
		t.Fatalf("sharded run returned %d rows, want %d",
			len(gotView.Result.Rows), len(refView.Result.Rows))
	}
	for i := range refView.Result.Rows {
		want, got := refView.Result.Rows[i], gotView.Result.Rows[i]
		if got.Name != want.Name || got.Error != "" || !reflect.DeepEqual(got.Result, want.Result) {
			t.Fatalf("row %d differs:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if serveCounter(reg, "shard_subjobs_dispatched_total") < 2 {
		t.Fatal("sweep was not actually sharded across peers")
	}

	gotJnl, err := os.ReadFile(filepath.Join(coordDir, "job-1.jnl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJnl, refJnl) {
		t.Fatalf("merged journal is not byte-identical to the single-node run:\n got %d bytes\nwant %d bytes",
			len(gotJnl), len(refJnl))
	}
}

// TestShardedSweepResumesFromJournal: a coordinator restarted mid-sweep
// re-dispatches only unjournaled points; the final journal still merges
// canonically.
func TestShardedSweepResumesFromJournal(t *testing.T) {
	spec := testSweepSpec(4)
	spec.Workers = 1

	// Run the sweep to completion without peers, then strip the finish
	// record — the restarted (now peered) service recovers the job with a
	// fully populated journal, so the sharded path must find zero pending
	// points and dispatch nothing.
	dir := t.TempDir()
	s1 := openTestService(t, dir, nil)
	v1, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := waitState(t, s1, v1.ID, StateDone)
	// Strip the finish record so the restarted service re-runs job 1
	// from its (complete) journal, as if killed at the finish line.
	s1.Close()
	stripLastManifestRecord(t, dir)

	_, peer1 := startPeer(t)
	reg := metrics.NewRegistry()
	s2 := openTestService(t, dir, func(o *Options) {
		o.Peers = []string{peer1.URL}
		o.Metrics = reg
	})
	defer s2.Close()
	got := waitState(t, s2, v1.ID, StateDone)
	if len(got.Result.Rows) != len(want.Result.Rows) {
		t.Fatalf("resumed sharded job: %d rows, want %d", len(got.Result.Rows), len(want.Result.Rows))
	}
	for i := range want.Result.Rows {
		if !reflect.DeepEqual(got.Result.Rows[i].Result, want.Result.Rows[i].Result) {
			t.Fatalf("row %d differs after resume", i)
		}
	}
	if n := serveCounter(reg, "shard_subjobs_dispatched_total"); n != 0 {
		t.Fatalf("fully journaled job dispatched %g sub-jobs, want 0", n)
	}
}

// stripLastManifestRecord removes the manifest's final line (a finish
// record) so recovery treats the job as interrupted.
func stripLastManifestRecord(t *testing.T, dir string) {
	t.Helper()
	path := filepath.Join(dir, "jobs.jsonl")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	// Drop trailing empty slice, then the last record.
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		t.Fatal("manifest empty")
	}
	if err := os.WriteFile(path, bytes.Join(lines[:len(lines)-1], nil), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestNoShardPinsJobLocal: a spec with no_shard runs on the coordinator
// even with peers configured — the recursion guard for peers that
// themselves have peers.
func TestNoShardPinsJobLocal(t *testing.T) {
	_, peer1 := startPeer(t)
	reg := metrics.NewRegistry()
	s := openTestService(t, t.TempDir(), func(o *Options) {
		o.Peers = []string{peer1.URL}
		o.Metrics = reg
	})
	defer s.Close()
	spec := testSweepSpec(3)
	spec.NoShard = true
	v, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, v.ID, StateDone)
	if n := serveCounter(reg, "shard_subjobs_dispatched_total"); n != 0 {
		t.Fatalf("no_shard job dispatched %g sub-jobs", n)
	}
}

// TestShardedSweepDeadPeerStillFinishes: with one real peer and one
// unreachable address, the sweep still completes (dead peer's shards
// requeue to the live one, or run locally after exhaustion).
func TestShardedSweepDeadPeerStillFinishes(t *testing.T) {
	_, peer1 := startPeer(t)
	s := openTestService(t, t.TempDir(), func(o *Options) {
		o.Peers = []string{peer1.URL, "http://127.0.0.1:1"} // port 1: refused
		o.ShardRows = 2
		o.StealAfter = 200 * time.Millisecond
	})
	defer s.Close()
	v, err := s.Submit(testSweepSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, s, v.ID, StateDone)
	for i, r := range got.Result.Rows {
		if r.Error != "" || r.Result == nil {
			t.Fatalf("row %d failed despite a live peer: %+v", i, r)
		}
	}
}
