package serve

import (
	"os"
	"path/filepath"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	m, recs, err := openManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh manifest has %d records", len(recs))
	}
	spec := testSimSpec()
	fp := fpHex(0xabc)
	events := []manifestRecord{
		{Op: "submit", ID: 1, Spec: &spec, Unix: 100},
		{Op: "start", ID: 1, Fingerprint: &fp, Unix: 101},
		{Op: "finish", ID: 1, State: StateDone, Unix: 102},
	}
	for _, rec := range events {
		if err := m.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()

	m2, recs, err := openManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	if recs[0].Op != "submit" || recs[0].Spec == nil || recs[0].Spec.Name != spec.Name {
		t.Errorf("submit record mangled: %+v", recs[0])
	}
	if recs[1].Fingerprint == nil || *recs[1].Fingerprint != 0xabc {
		t.Errorf("fingerprint mangled: %+v", recs[1])
	}
	if recs[2].State != StateDone {
		t.Errorf("finish record mangled: %+v", recs[2])
	}
}

// TestManifestTornTail pins crash tolerance: a half-written final line
// (the process died mid-append) is dropped and truncated so the next
// append starts on a clean boundary.
func TestManifestTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	m, _, err := openManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSimSpec()
	m.append(manifestRecord{Op: "submit", ID: 1, Spec: &spec, Unix: 1})
	m.append(manifestRecord{Op: "finish", ID: 1, State: StateDone, Unix: 2})
	m.Close()

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"submit","id":2,"sp`) // torn mid-record
	f.Close()

	m2, recs, err := openManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("want the 2 intact records, got %d", len(recs))
	}
	// The tail is gone: a fresh append then replays cleanly.
	if err := m2.append(manifestRecord{Op: "submit", ID: 2, Spec: &spec, Unix: 3}); err != nil {
		t.Fatal(err)
	}
	m2.Close()
	_, recs, err = openManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].ID != 2 {
		t.Fatalf("post-truncation append mangled: %+v", recs)
	}
}

// TestManifestCorruptLineStopsReplay: a corrupt record in the middle
// poisons trust in everything after it — replay keeps the clean prefix.
func TestManifestCorruptLineStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	spec := testSimSpec()
	m, _, _ := openManifest(path)
	m.append(manifestRecord{Op: "submit", ID: 1, Spec: &spec, Unix: 1})
	m.Close()
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.WriteString("not json at all\n")
	f.Close()

	_, recs, err := openManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("want 1 clean record, got %d", len(recs))
	}
}
