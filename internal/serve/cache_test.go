package serve

import (
	"path/filepath"
	"reflect"
	"testing"

	"hbmsim/internal/metrics"
	"hbmsim/internal/resultcache"
)

func openTestCache(t *testing.T) *resultcache.Store {
	t.Helper()
	c, err := resultcache.Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func serveCounter(reg *metrics.Registry, name string) float64 {
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			return s.Value
		}
	}
	return 0
}

// TestCacheHitOnResubmit is the tentpole's cache contract end to end:
// the first run simulates and stores, the identical resubmission is
// answered from the cache with an identical payload, cache_hit in the
// view, and the serve_cache_{hit,miss}_total counters moving.
func TestCacheHitOnResubmit(t *testing.T) {
	cache := openTestCache(t)
	reg := metrics.NewRegistry()
	s := openTestService(t, t.TempDir(), func(o *Options) {
		o.Cache = cache
		o.Metrics = reg
	})
	defer s.Close()

	v1, err := s.Submit(testSimSpec())
	if err != nil {
		t.Fatal(err)
	}
	got1 := waitState(t, s, v1.ID, StateDone)
	if got1.CacheHit {
		t.Fatal("first run must not be a cache hit")
	}
	if hits := serveCounter(reg, "serve_cache_hit_total"); hits != 0 {
		t.Fatalf("serve_cache_hit_total = %g after first run, want 0", hits)
	}
	if misses := serveCounter(reg, "serve_cache_miss_total"); misses != 1 {
		t.Fatalf("serve_cache_miss_total = %g after first run, want 1", misses)
	}

	v2, err := s.Submit(testSimSpec())
	if err != nil {
		t.Fatal(err)
	}
	got2 := waitState(t, s, v2.ID, StateDone)
	if !got2.CacheHit {
		t.Fatal("identical resubmission was not served from the cache")
	}
	if hits := serveCounter(reg, "serve_cache_hit_total"); hits != 1 {
		t.Fatalf("serve_cache_hit_total = %g, want 1", hits)
	}
	if !reflect.DeepEqual(got1.Result, got2.Result) {
		t.Fatal("cached payload differs from the simulated one")
	}

	// A different spec misses.
	spec := testSimSpec()
	spec.Config.HBMSlots = 48
	v3, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got3 := waitState(t, s, v3.ID, StateDone); got3.CacheHit {
		t.Fatal("different spec must not hit the cache")
	}
}

// TestCacheHitSurvivesRestart: cache entries and the cache_hit marker
// both outlive the process — the marker is replayed from the finish
// manifest record, and a fresh service over the same cache directory
// answers from it.
func TestCacheHitSurvivesRestart(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "cache")
	dir := t.TempDir()
	cache, err := resultcache.Open(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	s := openTestService(t, dir, func(o *Options) { o.Cache = cache })
	v1, _ := s.Submit(testSimSpec())
	waitState(t, s, v1.ID, StateDone)
	v2, _ := s.Submit(testSimSpec())
	hit := waitState(t, s, v2.ID, StateDone)
	if !hit.CacheHit {
		t.Fatal("resubmission not served from cache")
	}
	s.Close()

	cache2, err := resultcache.Open(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := openTestService(t, dir, func(o *Options) { o.Cache = cache2 })
	defer s2.Close()
	// The replayed job still shows cache_hit.
	if v, ok := s2.Get(v2.ID); !ok || !v.CacheHit {
		t.Fatalf("cache_hit lost across restart: %+v", v)
	}
	// And a new identical submission hits the reopened cache.
	v3, err := s2.Submit(testSimSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got := waitState(t, s2, v3.ID, StateDone); !got.CacheHit {
		t.Fatal("reopened cache did not answer an identical job")
	}
}

// TestCacheSweepAndExperimentKinds: all three job kinds go through the
// cache (the fingerprint folds the kind, so they can never collide).
func TestCacheSweepKind(t *testing.T) {
	cache := openTestCache(t)
	s := openTestService(t, t.TempDir(), func(o *Options) { o.Cache = cache })
	defer s.Close()
	v1, err := s.Submit(testSweepSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	first := waitState(t, s, v1.ID, StateDone)
	v2, err := s.Submit(testSweepSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	second := waitState(t, s, v2.ID, StateDone)
	if !second.CacheHit {
		t.Fatal("identical sweep not served from cache")
	}
	if !reflect.DeepEqual(first.Result, second.Result) {
		t.Fatal("cached sweep payload differs")
	}
}

// TestCacheDisabledIsInert: without a cache the counters stay zero and
// nothing claims cache_hit.
func TestCacheDisabledIsInert(t *testing.T) {
	reg := metrics.NewRegistry()
	s := openTestService(t, t.TempDir(), func(o *Options) { o.Metrics = reg })
	defer s.Close()
	v1, _ := s.Submit(testSimSpec())
	waitState(t, s, v1.ID, StateDone)
	v2, _ := s.Submit(testSimSpec())
	if got := waitState(t, s, v2.ID, StateDone); got.CacheHit {
		t.Fatal("cache_hit without a cache")
	}
	if serveCounter(reg, "serve_cache_hit_total") != 0 || serveCounter(reg, "serve_cache_miss_total") != 0 {
		t.Fatal("cache counters moved without a cache")
	}
}
