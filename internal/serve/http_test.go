package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postJob(t *testing.T, url string, spec Spec) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeView(t *testing.T, resp *http.Response) View {
	t.Helper()
	defer resp.Body.Close()
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding view: %v", err)
	}
	return v
}

func TestHTTPSubmitPollResult(t *testing.T) {
	s := openTestService(t, t.TempDir(), nil)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJob(t, ts.URL, testSimSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	v := decodeView(t, resp)
	if v.ID != 1 {
		t.Fatalf("job id %d, want 1", v.ID)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(fmt.Sprintf("%s/jobs/%d", ts.URL, v.ID))
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", r.StatusCode)
		}
		vv := decodeView(t, r)
		if vv.State.Terminal() {
			if vv.State != StateDone || vv.Result == nil || vv.Result.Sim == nil {
				t.Fatalf("job ended %s (err=%q) result=%v", vv.State, vv.Error, vv.Result)
			}
			if vv.Spec == nil {
				t.Error("GET /jobs/{id} should include the spec")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// List shows the job without heavy fields.
	r, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var list []View
	if err := json.NewDecoder(r.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Result != nil || list[0].Spec != nil {
		t.Fatalf("list shape wrong: %+v", list)
	}
}

func TestHTTPBackpressure429(t *testing.T) {
	block := make(chan struct{})
	s := openTestService(t, t.TempDir(), func(o *Options) {
		o.Workers = 1
		o.QueueCap = 1
		o.testHookBeforeJob = func(*job) { <-block }
	})
	defer s.Close()
	defer close(block)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postJob(t, ts.URL, testSimSpec()).Body.Close()
	waitState(t, s, 1, StateRunning)
	postJob(t, ts.URL, testSimSpec()).Body.Close()

	resp := postJob(t, ts.URL, testSimSpec())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 must carry Retry-After")
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	s := openTestService(t, t.TempDir(), nil)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Invalid spec -> 400.
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"kind":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad spec status %d, want 400", resp.StatusCode)
	}
	// Unknown field -> 400 (typo safety).
	resp, _ = http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"kindd":"sim"}`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status %d, want 400", resp.StatusCode)
	}
	// Unknown job -> 404.
	resp, _ = http.Get(ts.URL + "/jobs/99")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status %d, want 404", resp.StatusCode)
	}
	// Bad id -> 400.
	resp, _ = http.Get(ts.URL + "/jobs/banana")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id status %d, want 400", resp.StatusCode)
	}

	// Cancel of a finished job -> 409.
	v, _ := s.Submit(testSimSpec())
	waitState(t, s, v.ID, StateDone)
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/jobs/%d", ts.URL, v.ID), nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("cancel finished status %d, want 409", resp.StatusCode)
	}
}

func TestHTTPCancel(t *testing.T) {
	block := make(chan struct{})
	s := openTestService(t, t.TempDir(), func(o *Options) {
		o.Workers = 1
		o.testHookBeforeJob = func(*job) { <-block }
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postJob(t, ts.URL, testSimSpec()).Body.Close()
	waitState(t, s, 1, StateRunning)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d, want 200", resp.StatusCode)
	}
	close(block)
	waitState(t, s, 1, StateCancelled)
}

// TestHTTPServerSentEvents reads the live stream end to end: an initial
// snapshot event, progress updates, and a final terminal event after
// which the stream closes.
func TestHTTPServerSentEvents(t *testing.T) {
	s := openTestService(t, t.TempDir(), func(o *Options) { o.Workers = 1; o.JobWorkers = 1 })
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postJob(t, ts.URL, testSweepSpec(4)).Body.Close()
	resp, err := http.Get(ts.URL + "/jobs/1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	var events []View
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var v View
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &v); err != nil {
			t.Fatalf("bad event payload %q: %v", line, err)
		}
		events = append(events, v)
	}
	// The stream must end by itself (terminal event) without a client
	// disconnect; scanner.Err() == nil means clean EOF.
	if err := scanner.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no events received")
	}
	last := events[len(events)-1]
	if last.State != StateDone {
		t.Fatalf("last event state %s, want done", last.State)
	}
	// Events for an already-terminal job: one snapshot, then EOF.
	resp2, err := http.Get(ts.URL + "/jobs/1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	n := 0
	sc := bufio.NewScanner(resp2.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: ") {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("terminal-job stream sent %d events, want 1", n)
	}
}
