package serve

import (
	"strings"
	"testing"

	"hbmsim/internal/membackend"
)

func TestWorkloadSpecBuild(t *testing.T) {
	for _, gen := range []string{"sort", "spgemm", "stream", "bfs", "adversarial", "uniform", "zipf"} {
		wl, err := (WorkloadSpec{Gen: gen, Cores: 2, Size: 400, Seed: 1}).Build()
		if err != nil {
			t.Errorf("%s: %v", gen, err)
			continue
		}
		if wl.Cores() != 2 {
			t.Errorf("%s: %d cores, want 2", gen, wl.Cores())
		}
	}
	if _, err := (WorkloadSpec{Gen: "nope", Cores: 1}).Build(); err == nil {
		t.Error("unknown generator accepted")
	}
	if _, err := (WorkloadSpec{Gen: "uniform"}).Build(); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := (WorkloadSpec{Cores: 1}).Build(); err == nil {
		t.Error("empty generator accepted")
	}
}

func TestWorkloadSpecDeterministic(t *testing.T) {
	spec := WorkloadSpec{Gen: "zipf", Cores: 3, Size: 500, Seed: 42}
	a, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := spec.Build()
	if len(a.Traces) != len(b.Traces) {
		t.Fatal("trace counts differ")
	}
	for i := range a.Traces {
		for j := range a.Traces[i] {
			if a.Traces[i][j] != b.Traces[i][j] {
				t.Fatalf("trace %d diverges at %d — generators must be deterministic in (spec, seed)", i, j)
			}
		}
	}
}

func TestConfigSpecValidation(t *testing.T) {
	if _, err := (ConfigSpec{HBMSlots: 8, Arbiter: "bogus"}).Config(); err == nil ||
		!strings.Contains(err.Error(), "unknown arbiter") {
		t.Errorf("bad arbiter: %v", err)
	}
	if _, err := (ConfigSpec{HBMSlots: 8, Replacement: "bogus"}).Config(); err == nil {
		t.Error("bad replacement accepted")
	}
	if _, err := (ConfigSpec{HBMSlots: 8, Mapping: "bogus"}).Config(); err == nil {
		t.Error("bad mapping accepted")
	}
	if _, err := (ConfigSpec{HBMSlots: 8, Permuter: "bogus"}).Config(); err == nil {
		t.Error("bad permuter accepted")
	}
	cfg, err := (ConfigSpec{HBMSlots: 8}).Config()
	if err != nil {
		t.Fatalf("minimal spec: %v", err)
	}
	if cfg.Channels != 1 {
		t.Errorf("channels default %d, want 1 (matching hbmsim -q)", cfg.Channels)
	}
}

// TestConfigSpecBackend covers the backend fields: named kinds parse with
// their key=value parameters, bad kinds and parameters are refused, and a
// spec with no backend stays on the reference model.
func TestConfigSpecBackend(t *testing.T) {
	cfg, err := (ConfigSpec{HBMSlots: 8, Backend: "bandwidth", BackendParams: "bytes_per_tick=8,latency_ticks=9"}).Config()
	if err != nil {
		t.Fatalf("bandwidth spec: %v", err)
	}
	if cfg.Backend.Kind != membackend.Bandwidth || cfg.Backend.BytesPerTick != 8 || cfg.Backend.LatencyTicks != 9 {
		t.Errorf("backend config = %+v", cfg.Backend)
	}
	if _, err := (ConfigSpec{HBMSlots: 8, Backend: "bogus"}).Config(); err == nil ||
		!strings.Contains(err.Error(), "unknown backend") {
		t.Errorf("bad backend: %v", err)
	}
	if _, err := (ConfigSpec{HBMSlots: 8, Backend: "hybrid", BackendParams: "warp=9"}).Config(); err == nil {
		t.Error("bad backend parameter accepted")
	}
	// Parameters without a kind parameterise the reference model — refused
	// keys still error rather than being silently dropped.
	if _, err := (ConfigSpec{HBMSlots: 8, BackendParams: "fast_slots=-1"}).Config(); err == nil {
		t.Error("invalid parameter without a kind accepted")
	}
	cfg, err = (ConfigSpec{HBMSlots: 8}).Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Backend.Kind != "" {
		t.Errorf("spec without backend set kind %q", cfg.Backend.Kind)
	}
}

// TestFingerprintSensitivity pins that the identity hash moves with
// every input that affects results — it is what stops a recovered job
// from replaying journal rows that belong to a different job.
func TestFingerprintSensitivity(t *testing.T) {
	base := testSweepSpec(2)
	wl, err := base.Workload.Build()
	if err != nil {
		t.Fatal(err)
	}
	fp0, err := base.Fingerprint(wl)
	if err != nil {
		t.Fatal(err)
	}
	if fp1, _ := base.Fingerprint(wl); fp1 != fp0 {
		t.Fatal("fingerprint not stable across calls")
	}

	mutations := map[string]func(*Spec){
		"config":     func(s *Spec) { s.Points[0].Config.HBMSlots++ },
		"backend":    func(s *Spec) { s.Points[0].Config.Backend = "bandwidth" },
		"point name": func(s *Spec) { s.Points[1].Name = "renamed" },
		"point set":  func(s *Spec) { s.Points = s.Points[:1] },
	}
	for name, mutate := range mutations {
		m := testSweepSpec(2)
		mutate(&m)
		fp, err := m.Fingerprint(wl)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fp == fp0 {
			t.Errorf("%s change did not move the fingerprint", name)
		}
	}

	// A different workload moves it too.
	other := testSweepSpec(2)
	otherWl, _ := (WorkloadSpec{Gen: "zipf", Cores: 4, Size: 3000, Seed: 999}).Build()
	if fp, _ := other.Fingerprint(otherWl); fp == fp0 {
		t.Error("workload change did not move the fingerprint")
	}

	// Experiment jobs fingerprint their options (no workload to hash).
	e1 := Spec{Kind: KindExperiment, Experiment: "fig3"}
	e2 := Spec{Kind: KindExperiment, Experiment: "fig3", Full: true}
	f1, err := e1.Fingerprint(nil)
	if err != nil {
		t.Fatal(err)
	}
	if f2, _ := e2.Fingerprint(nil); f1 == f2 {
		t.Error("experiment option change did not move the fingerprint")
	}
}

func TestSpecPointName(t *testing.T) {
	s := Spec{Points: []Point{{Name: "alpha"}, {}}}
	if s.PointName(0) != "alpha" || s.PointName(1) != "point-1" {
		t.Errorf("point names: %q, %q", s.PointName(0), s.PointName(1))
	}
}

func TestStateTerminal(t *testing.T) {
	for st, want := range map[State]bool{
		StateQueued: false, StateRunning: false,
		StateDone: true, StateFailed: true, StateCancelled: true,
	} {
		if st.Terminal() != want {
			t.Errorf("%s.Terminal() = %v", st, st.Terminal())
		}
	}
}
