package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
)

// manifest is the service's append-only job journal: one JSON line per
// event (submission, start, terminal outcome), fsynced before the event
// is acknowledged. It is the single source of truth for crash recovery —
// a job is exactly as durable as its manifest records:
//
//   - a "submit" record with no terminal record is an unfinished job;
//     restart re-enqueues it (running jobs rewind to queued and resume
//     from their sweep journal or checkpoint snapshot);
//   - a terminal record ("done"/"failed"/"cancelled") freezes the job,
//     result payload included; restart never re-runs it.
//
// Like sweep.Journal, the file is recovered leniently: a torn final line
// (the process died mid-append) is truncated away — and the truncation
// fsynced, so a crash right after recovery cannot resurrect it — and
// every intact line before it is kept. A failed append is rewound the
// same way so partial bytes never poison the next record. Unlike
// sweep.Journal there is no keying — records are an ordered event log
// replayed front to back.
type manifest struct {
	mu  sync.Mutex
	f   manifestFile
	off int64 // durable end offset: intact, fsynced records end here
}

// manifestFile is the file surface the manifest needs. *os.File
// satisfies it; fault-injection tests substitute wrappers whose writes
// fail partway through.
type manifestFile interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Sync() error
	Truncate(int64) error
}

// fpHex is a job fingerprint on the manifest wire: a 16-digit hex JSON
// string, so the all-zero fingerprint — a legitimate FNV output — is
// encoded like any other value instead of being dropped by omitempty
// (which silently turned such jobs into "never started" on recovery).
// Decoding also accepts the bare JSON number older manifests recorded.
type fpHex uint64

func (f fpHex) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", fmt.Sprintf("%016x", uint64(f)))), nil
}

func (f *fpHex) UnmarshalJSON(b []byte) error {
	if len(b) >= 2 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := strconv.ParseUint(s, 16, 64)
		if err != nil {
			return fmt.Errorf("serve: fingerprint %q is not hex: %w", s, err)
		}
		*f = fpHex(v)
		return nil
	}
	// Legacy form: a decimal JSON number (pre-hex manifests).
	var v uint64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = fpHex(v)
	return nil
}

// manifestRecord is one line of the manifest.
type manifestRecord struct {
	// Op is "submit", "start", or "finish".
	Op string `json:"op"`
	ID uint64 `json:"id"`
	// Spec accompanies "submit"; Fingerprint accompanies "start" — as a
	// pointer, so presence (not a non-zero value) is what marks a job as
	// started, and the all-zero fingerprint round-trips.
	Spec        *Spec  `json:"spec,omitempty"`
	Fingerprint *fpHex `json:"fingerprint,omitempty"`
	// State and the outcome fields accompany "finish". CacheHit marks a
	// job answered from the result cache instead of simulated.
	State    State    `json:"state,omitempty"`
	Error    string   `json:"error,omitempty"`
	Result   *Payload `json:"result,omitempty"`
	CacheHit bool     `json:"cache_hit,omitempty"`
	// Unix is the event's wall-clock second, for operators reading the
	// file; recovery ignores it.
	Unix int64 `json:"unix,omitempty"`
}

// openManifest opens (creating if needed) the manifest at path, replays
// every intact record into the returned slice, truncates a torn tail
// (fsyncing the truncation) so subsequent appends start clean, and
// fsyncs the parent directory so a freshly created manifest survives a
// crash immediately after open.
func openManifest(path string) (*manifest, []manifestRecord, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	m, recs, err := openManifestFile(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("serve: syncing manifest directory: %w", err)
	}
	return m, recs, nil
}

// openManifestFile is openManifest past the os.OpenFile: recovery over
// an already-open file, split out for fault-injection tests.
func openManifestFile(f manifestFile) (*manifest, []manifestRecord, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, nil, err
	}
	var (
		recs []manifestRecord
		good int64
	)
	br := bufio.NewReader(f)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			if err == io.EOF {
				break // a partial line is a torn append; drop it
			}
			return nil, nil, fmt.Errorf("serve: reading manifest: %w", err)
		}
		var rec manifestRecord
		if json.Unmarshal([]byte(line), &rec) != nil || rec.Op == "" || rec.ID == 0 {
			break // a corrupt record poisons trust in everything after it
		}
		recs = append(recs, rec)
		good += int64(len(line))
	}
	if err := f.Truncate(good); err != nil {
		return nil, nil, fmt.Errorf("serve: truncating manifest tail: %w", err)
	}
	// Sync the truncation, or a crash after recovery resurrects the torn
	// line the next reopen already discarded once.
	if err := f.Sync(); err != nil {
		return nil, nil, fmt.Errorf("serve: syncing truncated manifest: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		return nil, nil, err
	}
	return &manifest{f: f, off: good}, recs, nil
}

// syncDir fsyncs a directory so a just-created entry in it survives a
// crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// append writes one record and syncs it to stable storage. The record is
// durable when append returns — the caller may then acknowledge the
// event to the submitter. A failed write or sync is rewound: the file is
// truncated back to the pre-append offset so partial bytes cannot poison
// the next record.
func (m *manifest) append(rec manifestRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: encoding manifest record: %w", err)
	}
	line = append(line, '\n')
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.f.Write(line); err != nil {
		return m.rewindLocked(fmt.Errorf("serve: appending manifest record: %w", err))
	}
	if err := m.f.Sync(); err != nil {
		return m.rewindLocked(fmt.Errorf("serve: syncing manifest: %w", err))
	}
	m.off += int64(len(line))
	return nil
}

// rewindLocked truncates a failed append back to the last durable
// offset and returns cause (annotated if the rewind itself failed).
// Callers hold m.mu.
func (m *manifest) rewindLocked(cause error) error {
	if err := m.f.Truncate(m.off); err != nil {
		return fmt.Errorf("%w (and rewinding the torn tail failed: %v)", cause, err)
	}
	if _, err := m.f.Seek(m.off, io.SeekStart); err != nil {
		return fmt.Errorf("%w (and rewinding the torn tail failed: %v)", cause, err)
	}
	m.f.Sync() // best-effort; the next append reports a persistent sync failure
	return cause
}

// Close closes the underlying file. Appending after Close fails.
func (m *manifest) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.f.Close()
}
