package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// manifest is the service's append-only job journal: one JSON line per
// event (submission, start, terminal outcome), fsynced before the event
// is acknowledged. It is the single source of truth for crash recovery —
// a job is exactly as durable as its manifest records:
//
//   - a "submit" record with no terminal record is an unfinished job;
//     restart re-enqueues it (running jobs rewind to queued and resume
//     from their sweep journal or checkpoint snapshot);
//   - a terminal record ("done"/"failed"/"cancelled") freezes the job,
//     result payload included; restart never re-runs it.
//
// Like sweep.Journal, the file is recovered leniently: a torn final line
// (the process died mid-append) is truncated away and every intact line
// before it is kept. Unlike sweep.Journal there is no keying — records
// are an ordered event log replayed front to back.
type manifest struct {
	mu sync.Mutex
	f  *os.File
}

// manifestRecord is one line of the manifest.
type manifestRecord struct {
	// Op is "submit", "start", or "finish".
	Op string `json:"op"`
	ID uint64 `json:"id"`
	// Spec and Fingerprint accompany "submit".
	Spec        *Spec  `json:"spec,omitempty"`
	Fingerprint uint64 `json:"fingerprint,omitempty"`
	// State and the outcome fields accompany "finish".
	State  State    `json:"state,omitempty"`
	Error  string   `json:"error,omitempty"`
	Result *Payload `json:"result,omitempty"`
	// Unix is the event's wall-clock second, for operators reading the
	// file; recovery ignores it.
	Unix int64 `json:"unix,omitempty"`
}

// openManifest opens (creating if needed) the manifest at path, replays
// every intact record into the returned slice, and truncates a torn
// tail so subsequent appends start clean.
func openManifest(path string) (*manifest, []manifestRecord, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	var (
		recs []manifestRecord
		good int64
	)
	br := bufio.NewReader(f)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			if err == io.EOF {
				break // a partial line is a torn append; drop it
			}
			f.Close()
			return nil, nil, fmt.Errorf("serve: reading manifest: %w", err)
		}
		var rec manifestRecord
		if json.Unmarshal([]byte(line), &rec) != nil || rec.Op == "" || rec.ID == 0 {
			break // a corrupt record poisons trust in everything after it
		}
		recs = append(recs, rec)
		good += int64(len(line))
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("serve: truncating manifest tail: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &manifest{f: f}, recs, nil
}

// append writes one record and syncs it to stable storage. The record is
// durable when append returns — the caller may then acknowledge the
// event to the submitter.
func (m *manifest) append(rec manifestRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: encoding manifest record: %w", err)
	}
	line = append(line, '\n')
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.f.Write(line); err != nil {
		return fmt.Errorf("serve: appending manifest record: %w", err)
	}
	if err := m.f.Sync(); err != nil {
		return fmt.Errorf("serve: syncing manifest: %w", err)
	}
	return nil
}

// Close closes the underlying file. Appending after Close fails.
func (m *manifest) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.f.Close()
}
