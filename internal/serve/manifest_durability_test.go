package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

// manifestFaultFile wraps a real manifest file with injectable
// write/sync failures (see the sweep journal's faultFile for why
// /dev/full cannot model a partially persisted append).
type manifestFaultFile struct {
	*os.File
	failWriteAfter int // >= 0: next Write persists that many bytes, then ENOSPC
	failSync       bool
}

func (f *manifestFaultFile) Write(p []byte) (int, error) {
	if f.failWriteAfter >= 0 {
		n := f.failWriteAfter
		if n > len(p) {
			n = len(p)
		}
		f.failWriteAfter = -1
		n, _ = f.File.Write(p[:n])
		return n, syscall.ENOSPC
	}
	return f.File.Write(p)
}

func (f *manifestFaultFile) Sync() error {
	if f.failSync {
		f.failSync = false
		return syscall.ENOSPC
	}
	return f.File.Sync()
}

// TestManifestAppendENOSPCRewind: an append failing partway must be
// rewound so the next record starts on a clean boundary — without the
// rewind, the following append would concatenate onto the torn bytes
// and lenient reopen would discard both records.
func TestManifestAppendENOSPCRewind(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	spec := testSimSpec()
	m, _, err := openManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.append(manifestRecord{Op: "submit", ID: 1, Spec: &spec, Unix: 1}); err != nil {
		t.Fatal(err)
	}
	m.Close()

	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	ff := &manifestFaultFile{File: f, failWriteAfter: -1}
	m2, recs, err := openManifestFile(ff)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("replayed %d records, want 1", len(recs))
	}
	before, _ := os.ReadFile(path)

	ff.failWriteAfter = 9
	err = m2.append(manifestRecord{Op: "finish", ID: 1, State: StateDone, Unix: 2})
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append under ENOSPC returned %v, want ENOSPC", err)
	}
	after, _ := os.ReadFile(path)
	if !bytes.Equal(before, after) {
		t.Fatal("failed append was not rewound")
	}

	// Disk recovered: the next append lands cleanly and replays.
	if err := m2.append(manifestRecord{Op: "finish", ID: 1, State: StateDone, Unix: 3}); err != nil {
		t.Fatalf("append after rewind: %v", err)
	}
	m2.Close()
	_, recs, err = openManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Op != "finish" || recs[1].State != StateDone {
		t.Fatalf("post-rewind replay mangled: %+v", recs)
	}
}

// TestManifestSyncFailureRewind: a record whose fsync fails is not
// durable and must be rewound rather than left for the next append to
// build on.
func TestManifestSyncFailureRewind(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	spec := testSimSpec()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	ff := &manifestFaultFile{File: f, failWriteAfter: -1}
	m, _, err := openManifestFile(ff)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.append(manifestRecord{Op: "submit", ID: 1, Spec: &spec, Unix: 1}); err != nil {
		t.Fatal(err)
	}
	before, _ := os.ReadFile(path)
	ff.failSync = true
	if err := m.append(manifestRecord{Op: "finish", ID: 1, State: StateDone, Unix: 2}); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append under failing sync returned %v, want ENOSPC", err)
	}
	after, _ := os.ReadFile(path)
	if !bytes.Equal(before, after) {
		t.Fatal("unsynced append was not rewound")
	}
	m.Close()
}

// TestManifestRecoveryCrashWindow pins the recovery-then-crash window:
// lenient recovery truncates the torn tail AND fsyncs the truncation,
// so dying before the first new append leaves a file that recovers
// byte-identically, however many times it is reopened.
func TestManifestRecoveryCrashWindow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	spec := testSimSpec()
	m, _, err := openManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	m.append(manifestRecord{Op: "submit", ID: 1, Spec: &spec, Unix: 1})
	m.append(manifestRecord{Op: "finish", ID: 1, State: StateDone, Unix: 2})
	m.Close()
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"submit","id":2,"sp`) // torn mid-record
	f.Close()

	// Recovery, then "crash" before any new append.
	for i := 0; i < 3; i++ {
		m, recs, err := openManifest(path)
		if err != nil {
			t.Fatalf("reopen %d: %v", i, err)
		}
		if len(recs) != 2 {
			t.Fatalf("reopen %d replayed %d records, want 2", i, len(recs))
		}
		m.Close()
		if got, _ := os.ReadFile(path); !bytes.Equal(got, clean) {
			t.Fatalf("reopen %d changed the file bytes (torn tail resurrected?)", i)
		}
	}
}

// TestManifestFingerprintZeroRoundTrip pins the omitempty bugfix: the
// all-zero fingerprint — a legitimate FNV-1a output — must survive the
// wire, as must the legacy decimal encoding older manifests used.
func TestManifestFingerprintZeroRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	m, _, err := openManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSimSpec()
	zero := fpHex(0)
	m.append(manifestRecord{Op: "submit", ID: 1, Spec: &spec, Unix: 1})
	m.append(manifestRecord{Op: "start", ID: 1, Fingerprint: &zero, Unix: 2})
	m.Close()

	// The zero fingerprint is on the wire (as a hex string), not dropped.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"fingerprint":"0000000000000000"`)) {
		t.Fatalf("zero fingerprint missing from the wire:\n%s", raw)
	}
	_, recs, err := openManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
	if recs[1].Fingerprint == nil || *recs[1].Fingerprint != 0 {
		t.Fatalf("zero fingerprint lost on round-trip: %+v", recs[1])
	}

	// Legacy decimal fingerprints still decode.
	var legacy manifestRecord
	if err := json.Unmarshal([]byte(`{"op":"start","id":1,"fingerprint":3735928559}`), &legacy); err != nil {
		t.Fatal(err)
	}
	if legacy.Fingerprint == nil || uint64(*legacy.Fingerprint) != 0xdeadbeef {
		t.Fatalf("legacy decimal fingerprint mangled: %+v", legacy.Fingerprint)
	}
}

// TestServiceHonorsZeroFingerprint is the end-to-end shape of the bug:
// a recovered job whose journaled fingerprint is zero must be treated
// as started-with-fingerprint-zero — so a spec that now rebuilds a
// different fingerprint is REFUSED, exactly like any other mismatch.
// (Before the fix, omitempty dropped the zero on the wire and the job
// silently re-ran as if never started, skipping the resume guard.)
func TestServiceHonorsZeroFingerprint(t *testing.T) {
	dir := t.TempDir()
	spec := testSweepSpec(2)
	man, _, err := openManifest(filepath.Join(dir, "jobs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	zero := fpHex(0)
	if err := man.append(manifestRecord{Op: "submit", ID: 1, Spec: &spec, Unix: 1}); err != nil {
		t.Fatal(err)
	}
	if err := man.append(manifestRecord{Op: "start", ID: 1, Fingerprint: &zero, Unix: 2}); err != nil {
		t.Fatal(err)
	}
	man.Close()

	s := openTestService(t, dir, nil)
	defer s.Close()
	got := waitState(t, s, 1, StateFailed)
	if !strings.Contains(got.Error, "fingerprint mismatch") {
		t.Errorf("error %q should report the fingerprint mismatch for the zero fingerprint", got.Error)
	}
}
