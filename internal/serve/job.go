// Package serve implements the long-running simulation job service behind
// cmd/hbmserved: an HTTP front door that accepts simulation, sweep, and
// experiment jobs as JSON, runs them on a bounded worker pool, and survives
// crashes.
//
// The service composes the repo's existing robustness machinery instead of
// inventing new state: every accepted job is appended to an fsynced
// manifest journal before the submitter gets an ID, sweep jobs record each
// completed row through sweep.Journal, and long single simulations
// checkpoint periodically through core.Checkpoint. A process killed at any
// point — including SIGKILL — restarts with the same state directory,
// re-enqueues every unfinished job, and finishes them with results
// bit-identical to an uninterrupted run (the determinism guarantees come
// from the journal/checkpoint layers; serve only routes work through
// them).
//
// Robustness properties, in one place:
//
//   - Admission is bounded: when the queue of not-yet-running jobs is
//     full, Submit returns ErrQueueFull and the HTTP layer answers
//     429 with a Retry-After header. Jobs are journaled before they are
//     acknowledged, so an acknowledged job is never lost.
//   - Every job runs under a context: DELETE /jobs/{id} cancels it, a
//     per-job deadline (Spec.TimeoutSeconds) fails it, and a worker panic
//     is captured into the job's error instead of crashing the service.
//   - Graceful shutdown (Drain) stops admission and lets running jobs
//     finish; when the drain deadline expires, in-flight jobs are
//     interrupted WITHOUT a terminal manifest record, so the next start
//     resumes them from their journal or snapshot.
//
// See DESIGN.md §12 for the request lifecycle and the recovery
// invariants, and OPERATIONS.md for the operator's view.
package serve

import (
	"fmt"
	"hash/fnv"
	"sort"

	"hbmsim/internal/arbiter"
	"hbmsim/internal/core"
	"hbmsim/internal/experiments"
	"hbmsim/internal/membackend"
	"hbmsim/internal/model"
	"hbmsim/internal/replacement"
	"hbmsim/internal/trace"
	"hbmsim/internal/workloads"
)

// Kind discriminates the job types the service runs.
type Kind string

const (
	// KindSim is one simulation of one (config, workload) point; long
	// runs checkpoint periodically via core.Checkpoint and resume after a
	// crash.
	KindSim Kind = "sim"
	// KindSweep is a list of (config, workload) points fanned out over
	// sweep.RunContext; completed rows land in a per-job sweep.Journal
	// and a crashed job re-runs only its unfinished points.
	KindSweep Kind = "sweep"
	// KindExperiment runs one registered experiment from
	// internal/experiments (any id `hbmsweep -list` prints); its internal
	// sweeps are journaled like KindSweep jobs.
	KindExperiment Kind = "experiment"
)

// State is a job's lifecycle state. Transitions are strictly
// queued → running → one of the terminal states (done, failed,
// cancelled); a crash rewinds a running job to queued on restart.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// ConfigSpec is the JSON form of core.Config. Policy kinds are strings
// ("fifo", "priority", ...) validated against the simulator's known
// kinds; zero-valued fields take the simulator's documented defaults.
type ConfigSpec struct {
	HBMSlots     int    `json:"hbm_slots"`
	Channels     int    `json:"channels,omitempty"`
	Arbiter      string `json:"arbiter,omitempty"`
	Replacement  string `json:"replacement,omitempty"`
	Mapping      string `json:"mapping,omitempty"`
	Permuter     string `json:"permuter,omitempty"`
	RemapPeriod  uint64 `json:"remap_period,omitempty"`
	FetchLatency int    `json:"fetch_latency,omitempty"`
	// Backend names the far-memory model (reference, bandwidth, hybrid);
	// empty selects the paper's reference model. BackendParams carries the
	// backend's parameters in the CLI's comma-separated key=value syntax
	// (e.g. "bytes_per_tick=8,latency_ticks=9"); keys are
	// membackend.Config's JSON names.
	Backend       string `json:"backend,omitempty"`
	BackendParams string `json:"backend_params,omitempty"`
	Seed          int64  `json:"seed,omitempty"`
	MaxTicks      uint64 `json:"max_ticks,omitempty"`
}

// Config converts the spec to a core.Config, validating every named
// policy kind against the simulator's registries. Channels defaults to 1
// (the paper's single far channel), matching `hbmsim -q`; the remaining
// zero fields take core.Config's own defaults.
func (c ConfigSpec) Config() (core.Config, error) {
	channels := c.Channels
	if channels == 0 {
		channels = 1
	}
	cfg := core.Config{
		HBMSlots:     c.HBMSlots,
		Channels:     channels,
		Arbiter:      arbiter.Kind(c.Arbiter),
		Replacement:  replacement.Kind(c.Replacement),
		Mapping:      core.Mapping(c.Mapping),
		Permuter:     arbiter.PermuterKind(c.Permuter),
		RemapPeriod:  model.Tick(c.RemapPeriod),
		FetchLatency: c.FetchLatency,
		Seed:         c.Seed,
		MaxTicks:     model.Tick(c.MaxTicks),
	}
	if c.Arbiter != "" && !containsKind(arbiter.Kinds(), cfg.Arbiter) {
		return cfg, fmt.Errorf("serve: unknown arbiter %q (known: %v)", c.Arbiter, arbiter.Kinds())
	}
	if c.Replacement != "" && !containsKind(replacement.Kinds(), cfg.Replacement) {
		return cfg, fmt.Errorf("serve: unknown replacement %q (known: %v)", c.Replacement, replacement.Kinds())
	}
	if c.Mapping != "" && !containsKind(core.Mappings(), cfg.Mapping) {
		return cfg, fmt.Errorf("serve: unknown mapping %q (known: %v)", c.Mapping, core.Mappings())
	}
	if c.Permuter != "" && !containsKind(arbiter.PermuterKinds(), cfg.Permuter) {
		return cfg, fmt.Errorf("serve: unknown permuter %q (known: %v)", c.Permuter, arbiter.PermuterKinds())
	}
	if c.Backend != "" || c.BackendParams != "" {
		name := c.Backend
		if name == "" {
			name = string(membackend.Reference)
		}
		kind, err := membackend.ParseKind(name)
		if err != nil {
			return cfg, err
		}
		bc, err := membackend.ParseParams(kind, c.BackendParams)
		if err != nil {
			return cfg, err
		}
		cfg.Backend = bc
	}
	return cfg, nil
}

func containsKind[T comparable](known []T, k T) bool {
	for _, v := range known {
		if v == k {
			return true
		}
	}
	return false
}

// WorkloadSpec names a built-in workload generator plus its parameters —
// the same vocabulary as `hbmsim -gen`. Generators are deterministic in
// (spec, seed), which is what makes jobs replayable after a crash: the
// restarted service rebuilds the workload from the spec and verifies it
// against the fingerprint journaled at admission.
type WorkloadSpec struct {
	// Gen is the generator name: sort, spgemm, densemm, stream, bfs,
	// adversarial, uniform, or zipf.
	Gen string `json:"gen"`
	// Cores is the number of per-core traces to generate.
	Cores int `json:"cores"`
	// Size is the generator's size knob (sort N, matrix dimension,
	// reference count); 0 selects 8000, matching `hbmsim -gen`.
	Size int `json:"size,omitempty"`
	// PageBytes maps instrumented accesses to pages; 0 selects 64.
	PageBytes int `json:"page_bytes,omitempty"`
	// Seed drives the generator's randomness.
	Seed int64 `json:"seed,omitempty"`
}

// Build generates the workload.
func (w WorkloadSpec) Build() (*trace.Workload, error) {
	if w.Cores < 1 {
		return nil, fmt.Errorf("serve: workload needs cores >= 1, got %d", w.Cores)
	}
	size := w.Size
	if size == 0 {
		size = 8000
	}
	pageBytes := w.PageBytes
	if pageBytes == 0 {
		pageBytes = 64
	}
	switch w.Gen {
	case "sort":
		return workloads.SortWorkload(w.Cores, workloads.SortConfig{N: size, PageBytes: pageBytes}, w.Seed)
	case "spgemm":
		return workloads.SpGEMMWorkload(w.Cores, workloads.SpGEMMConfig{N: size, PageBytes: pageBytes}, w.Seed)
	case "densemm":
		return workloads.DenseMMWorkload(w.Cores, workloads.DenseMMConfig{N: size, PageBytes: pageBytes}, w.Seed)
	case "stream":
		return workloads.StreamWorkload(w.Cores, workloads.StreamConfig{N: size, PageBytes: pageBytes}, w.Seed)
	case "bfs":
		return workloads.BFSWorkload(w.Cores, workloads.BFSConfig{Vertices: size, PageBytes: pageBytes}, w.Seed)
	case "adversarial":
		return workloads.AdversarialWorkload(w.Cores, workloads.AdversarialConfig{Pages: size})
	case "uniform":
		return workloads.SyntheticWorkload(w.Cores, workloads.SyntheticConfig{Kind: workloads.Uniform, Refs: size, Pages: size / 4}, w.Seed)
	case "zipf":
		return workloads.SyntheticWorkload(w.Cores, workloads.SyntheticConfig{Kind: workloads.Zipfian, Refs: size, Pages: size / 4}, w.Seed)
	case "":
		return nil, fmt.Errorf("serve: workload spec needs a generator name")
	default:
		return nil, fmt.Errorf("serve: unknown workload generator %q", w.Gen)
	}
}

// Point is one configuration of a sweep job.
type Point struct {
	// Name labels the point in the job's rows; empty names become
	// "point-<index>".
	Name   string     `json:"name,omitempty"`
	Config ConfigSpec `json:"config"`
}

// Spec is a job submission. Kind selects which fields apply:
//
//   - sim: Workload + Config (+ CheckpointEveryTicks)
//   - sweep: Workload + Points (+ Workers)
//   - experiment: Experiment (+ Full, Seed, Workers)
//
// TimeoutSeconds applies to every kind.
type Spec struct {
	Kind Kind `json:"kind"`
	// Name labels the job in listings; optional.
	Name string `json:"name,omitempty"`

	// Workload is the input for sim and sweep jobs.
	Workload *WorkloadSpec `json:"workload,omitempty"`

	// Config is the sim job's configuration.
	Config *ConfigSpec `json:"config,omitempty"`
	// CheckpointEveryTicks overrides the service's default snapshot
	// cadence for this sim job (0 = service default).
	CheckpointEveryTicks uint64 `json:"checkpoint_every_ticks,omitempty"`

	// Points are the sweep job's configurations, all run against
	// Workload.
	Points []Point `json:"points,omitempty"`
	// NoShard pins a sweep job to this node even when the service has
	// peers configured. Shard sub-jobs carry it so a peer that itself has
	// peers never re-shards delegated work.
	NoShard bool `json:"no_shard,omitempty"`
	// Workers bounds the job's internal sweep parallelism (0 = service
	// default).
	Workers int `json:"workers,omitempty"`

	// Experiment names a registered experiment id (see `hbmsweep -list`).
	Experiment string `json:"experiment,omitempty"`
	// Full selects paper-scale experiment parameters (slow).
	Full bool `json:"full,omitempty"`
	// Seed seeds the experiment's workloads and policies (0 = 1).
	Seed int64 `json:"seed,omitempty"`

	// TimeoutSeconds is the job's running-time deadline; 0 means no
	// deadline. A job that exceeds it fails with a deadline error.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

// Validate checks the spec is complete and internally consistent for its
// kind, without building workloads.
func (s *Spec) Validate() error {
	switch s.Kind {
	case KindSim:
		if s.Workload == nil || s.Config == nil {
			return fmt.Errorf("serve: sim job needs both workload and config")
		}
		if len(s.Points) > 0 || s.Experiment != "" {
			return fmt.Errorf("serve: sim job cannot carry points or an experiment")
		}
		if _, err := s.Config.Config(); err != nil {
			return err
		}
	case KindSweep:
		if s.Workload == nil {
			return fmt.Errorf("serve: sweep job needs a workload")
		}
		if len(s.Points) == 0 {
			return fmt.Errorf("serve: sweep job needs at least one point")
		}
		if s.Config != nil || s.Experiment != "" {
			return fmt.Errorf("serve: sweep job cannot carry a top-level config or an experiment")
		}
		for i := range s.Points {
			if _, err := s.Points[i].Config.Config(); err != nil {
				return fmt.Errorf("point %d: %w", i, err)
			}
		}
	case KindExperiment:
		if s.Experiment == "" {
			return fmt.Errorf("serve: experiment job needs an experiment id")
		}
		if s.Workload != nil || s.Config != nil || len(s.Points) > 0 {
			return fmt.Errorf("serve: experiment job carries only experiment options")
		}
		if _, err := experiments.Get(s.Experiment); err != nil {
			return err
		}
	case "":
		return fmt.Errorf("serve: job spec needs a kind (sim, sweep, or experiment)")
	default:
		return fmt.Errorf("serve: unknown job kind %q", s.Kind)
	}
	if s.TimeoutSeconds < 0 {
		return fmt.Errorf("serve: timeout_seconds must be >= 0")
	}
	return nil
}

// PointName returns the sweep point's display name.
func (s *Spec) PointName(i int) string {
	if s.Points[i].Name != "" {
		return s.Points[i].Name
	}
	return fmt.Sprintf("point-%d", i)
}

// Fingerprint hashes the job's identity with the same primitives the
// checkpoint format uses: core.WorkloadHash over the built traces and
// core.ConfigHash over every defaulted configuration, folded together
// with FNV-1a. The manifest stores it at admission; recovery recomputes
// it from the spec and refuses to resume a job whose inputs no longer
// reproduce (a changed generator, a renamed point, an edited config), so
// journal/snapshot rows can never be replayed into a different job.
//
// wl may be nil for experiment jobs, whose identity is the spec itself
// (experiments build their own workloads from Seed internally).
func (s *Spec) Fingerprint(wl *trace.Workload) (uint64, error) {
	h := fnv.New64a()
	fmt.Fprintf(h, "kind=%s|", s.Kind)
	switch s.Kind {
	case KindSim:
		cfg, err := s.Config.Config()
		if err != nil {
			return 0, err
		}
		fmt.Fprintf(h, "cfg=%016x|wl=%016x", core.ConfigHash(cfg), core.WorkloadHash(wl.Raw()))
	case KindSweep:
		fmt.Fprintf(h, "wl=%016x", core.WorkloadHash(wl.Raw()))
		for i := range s.Points {
			cfg, err := s.Points[i].Config.Config()
			if err != nil {
				return 0, err
			}
			fmt.Fprintf(h, "|%s=%016x", s.PointName(i), core.ConfigHash(cfg))
		}
	case KindExperiment:
		fmt.Fprintf(h, "exp=%s|full=%t|seed=%d|workers=%d", s.Experiment, s.Full, s.Seed, s.Workers)
	}
	return h.Sum64(), nil
}

// RowResult is one finished point of a sweep job, in point order.
type RowResult struct {
	Name   string       `json:"name"`
	Result *core.Result `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
}

// TableResult is one experiment table rendered as CSV.
type TableResult struct {
	Title string `json:"title"`
	CSV   string `json:"csv"`
}

// ExperimentResult is the JSON form of an experiments.Outcome.
type ExperimentResult struct {
	ID         string        `json:"id"`
	Title      string        `json:"title"`
	PaperClaim string        `json:"paper_claim"`
	Headline   string        `json:"headline"`
	Tables     []TableResult `json:"tables,omitempty"`
}

// Payload is a finished job's result; exactly one field is set,
// matching the job kind.
type Payload struct {
	Sim        *core.Result      `json:"sim,omitempty"`
	Rows       []RowResult       `json:"rows,omitempty"`
	Experiment *ExperimentResult `json:"experiment,omitempty"`
}

// OptGapView is the JSON shape of a sim job's live optimality snapshot
// (present when the service runs with Options.TrackOptGap): how far the
// simulation currently sits from its streaming makespan lower bound. At
// a completed run's final update the ratio equals the batch
// lowerbound.Ratio estimate exactly.
type OptGapView struct {
	CompetitiveRatio float64 `json:"competitive_ratio"`
	LowerBoundTicks  uint64  `json:"lower_bound_ticks"`
	MeasuredTicks    uint64  `json:"measured_ticks"`
	UniquePages      int     `json:"unique_pages"`
	MissRatio        float64 `json:"miss_ratio"`
	P90StackDistance int64   `json:"p90_stack_distance"`
	Windows          int     `json:"windows"`
}

// ProgressView is the JSON shape of a job's live progress.
type ProgressView struct {
	Completed      int     `json:"completed"`
	Total          int     `json:"total"`
	Failed         int     `json:"failed,omitempty"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	ETASeconds     float64 `json:"eta_seconds,omitempty"`
}

// View is a job's externally visible state — what GET /jobs/{id}
// returns.
type View struct {
	ID    uint64 `json:"id"`
	Name  string `json:"name,omitempty"`
	Kind  Kind   `json:"kind"`
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
	// SubmittedUnix/StartedUnix/FinishedUnix are wall-clock seconds; zero
	// when the phase has not been reached. Restarts reset StartedUnix.
	SubmittedUnix int64 `json:"submitted_unix,omitempty"`
	StartedUnix   int64 `json:"started_unix,omitempty"`
	FinishedUnix  int64 `json:"finished_unix,omitempty"`
	// TraceID is the job's trace ID (32 hex digits) when the service runs
	// with tracing and the job's trace was sampled: resolve it on
	// /debug/trace?trace=<id> or download its Perfetto rendering there.
	TraceID string `json:"trace_id,omitempty"`
	// Recovered marks a job re-enqueued by crash recovery at least once.
	Recovered bool `json:"recovered,omitempty"`
	// CacheHit marks a job answered from the content-addressed result
	// cache: an identical job (same fingerprint) had already finished, so
	// its payload was returned without re-simulating.
	CacheHit bool          `json:"cache_hit,omitempty"`
	Progress *ProgressView `json:"progress,omitempty"`
	// OptGap is the live optimality snapshot of a running (or finished)
	// sim job; only set when the service tracks optimality gaps.
	OptGap *OptGapView `json:"optgap,omitempty"`
	Result *Payload    `json:"result,omitempty"`
	Spec   *Spec       `json:"spec,omitempty"`
}

// sortViews orders views by ID ascending.
func sortViews(vs []View) {
	sort.Slice(vs, func(i, j int) bool { return vs[i].ID < vs[j].ID })
}
