package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"hbmsim/internal/shard"
	"hbmsim/internal/sweep"
	"hbmsim/internal/tracing"
)

// runShardedSweep executes a multi-point sweep job across the service's
// peers through internal/shard. The unit of work is the journal row:
// already-journaled points (a resumed job) are never re-dispatched,
// arriving rows are journaled in completion order exactly like the local
// path, and a fully successful job ends with a canonical merge
// (sweep.RewriteCanonical) that rewrites the journal in point order —
// byte-identical to a single-node workers=1 run of the same spec.
//
// Sub-jobs are ordinary sweep specs over a subset of points with names
// pinned to the parent's PointName (so journal keys match), no_shard set
// (peers never re-shard), and the coordinator's traceparent attached, so
// the whole fan-out is one trace tree.
func (s *Service) runShardedSweep(ctx context.Context, j *job, jobs []sweep.Job) (*Payload, error) {
	jnlPath := s.jobFile(j.id, ".jnl")
	jnl, err := sweep.OpenJournal(jnlPath)
	if err != nil {
		return nil, err
	}
	// Closed explicitly before the canonical merge below; the deferred
	// close only covers the error paths (double Close is safe).
	defer jnl.Close()

	// Resume: only points without a journaled row are dispatched.
	var pendingIdx []int
	for i := range jobs {
		if _, ok := jnl.Lookup(jobs[i]); !ok {
			pendingIdx = append(pendingIdx, i)
		}
	}

	var mu sync.Mutex
	errs := make(map[int]string) // point index -> row error (not journaled)
	completed := len(jobs) - len(pendingIdx)
	start := time.Now()
	pushProg := func() {
		mu.Lock()
		p := sweep.Progress{
			Completed: completed, Total: len(jobs), Failed: len(errs),
			Elapsed: time.Since(start),
		}
		mu.Unlock()
		s.pushProgress(j, p)
	}
	pushProg()

	onRow := func(row shard.RowOutcome) {
		mu.Lock()
		completed++
		if row.Err != "" {
			errs[row.Index] = row.Err
		}
		mu.Unlock()
		if row.Err == "" && row.Result != nil {
			if rerr := jnl.Record(jobs[row.Index], row.Result); rerr != nil {
				// The row is lost to this journal but still counted in
				// memory; a restart re-runs only this point.
				mu.Lock()
				errs[row.Index] = rerr.Error()
				mu.Unlock()
			}
		}
		pushProg()
	}

	coord, err := shard.New(shard.Options{
		Peers:        s.opts.Peers,
		Client:       &http.Client{Timeout: 0}, // long polls bound per-request via ctx
		RowsPerShard: s.opts.ShardRows,
		StealAfter:   s.opts.StealAfter,
		Metrics:      s.opts.Metrics,
		MakeSpec:     func(points []int) ([]byte, error) { return shardSpec(j.spec, points) },
		RunLocal: func(ctx context.Context, points []int, emit func(shard.RowOutcome)) error {
			sub := make([]sweep.Job, len(points))
			for i, p := range points {
				sub[i] = jobs[p]
			}
			workers := j.spec.Workers
			if workers <= 0 {
				workers = s.opts.JobWorkers
			}
			rows := sweep.RunContext(ctx, sub, sweep.Options{
				Workers: workers,
				Metrics: s.opts.Metrics,
			})
			if cause := context.Cause(ctx); cause != nil {
				return cause
			}
			for i, r := range rows {
				out := shard.RowOutcome{Index: points[i], Result: r.Result}
				if r.Err != nil {
					out.Err = r.Err.Error()
				}
				emit(out)
			}
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	shardCtx, shardSpan := tracing.StartSpan(ctx, "serve.shard_sweep")
	shardSpan.SetAttrInt("points", int64(len(jobs)))
	shardSpan.SetAttrInt("pending", int64(len(pendingIdx)))
	shardSpan.SetAttrInt("peers", int64(len(s.opts.Peers)))
	err = coord.Run(shardCtx, pendingIdx, onRow)
	shardSpan.EndErr(err)
	if err != nil {
		return nil, err
	}
	if cause := context.Cause(ctx); cause != nil {
		return nil, cause
	}

	// Assemble the payload from the journal (authoritative for successes)
	// plus the in-memory error map.
	payload := &Payload{Rows: make([]RowResult, len(jobs))}
	allOK := true
	for i := range jobs {
		payload.Rows[i] = RowResult{Name: jobs[i].Name}
		if res, ok := jnl.Lookup(jobs[i]); ok {
			payload.Rows[i].Result = res
		} else {
			allOK = false
			mu.Lock()
			payload.Rows[i].Error = errs[i]
			mu.Unlock()
			if payload.Rows[i].Error == "" {
				payload.Rows[i].Error = "row missing after sharded run"
			}
		}
	}

	// Canonical merge: rewrite the completion-order journal in point
	// order so the bytes match a single-node run. Only when every row
	// succeeded — a partial journal stays in completion order for resume.
	if allOK {
		if err := jnl.Close(); err != nil {
			return nil, err
		}
		rows := make([]sweep.Row, len(jobs))
		for i := range jobs {
			rows[i] = sweep.Row{Job: jobs[i], Result: payload.Rows[i].Result}
		}
		if err := sweep.RewriteCanonical(jnlPath, rows); err != nil {
			return nil, err
		}
	}
	return payload, nil
}

// shardSpec renders one shard's sub-job spec: the parent sweep narrowed
// to the given point indices, names pinned so the rows keep their
// parent journal keys, no_shard set so peers run it locally.
func shardSpec(parent *Spec, points []int) ([]byte, error) {
	sub := Spec{
		Kind:           KindSweep,
		Name:           parent.Name + "-shard",
		Workload:       parent.Workload,
		Workers:        parent.Workers,
		NoShard:        true,
		TimeoutSeconds: parent.TimeoutSeconds,
		Points:         make([]Point, len(points)),
	}
	for i, p := range points {
		sub.Points[i] = Point{Name: parent.PointName(p), Config: parent.Points[p].Config}
	}
	return json.Marshal(sub)
}
