package serve

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"hbmsim/internal/core"
	"hbmsim/internal/metrics"
)

// testSimSpec is a small single-sim job (~milliseconds).
func testSimSpec() Spec {
	return Spec{
		Kind:     KindSim,
		Name:     "tiny-sim",
		Workload: &WorkloadSpec{Gen: "uniform", Cores: 4, Size: 2000, Seed: 7},
		Config:   &ConfigSpec{HBMSlots: 64, Arbiter: "priority"},
	}
}

// TestSimJobWithBackend runs a sim job whose spec selects a non-default
// far-memory backend end to end and checks the payload matches a direct
// core.Run under the same backend.
func TestSimJobWithBackend(t *testing.T) {
	s := openTestService(t, t.TempDir(), nil)
	defer s.Close()
	spec := testSimSpec()
	spec.Config.Backend = "hybrid"
	spec.Config.BackendParams = "fast_slots=8"
	v, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	done := waitState(t, s, v.ID, StateDone)
	if done.Result == nil || done.Result.Sim == nil {
		t.Fatal("no sim payload")
	}

	wl, err := spec.Workload.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Config.Config()
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Run(cfg, wl.Raw())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(done.Result.Sim, want) {
		t.Errorf("backend job result diverged from direct run:\n%+v\nvs\n%+v", done.Result.Sim, want)
	}
	if done.Result.Sim.Makespan <= 0 {
		t.Error("empty result")
	}
}

// testSweepSpec is a sweep over n arbiter points on one workload.
func testSweepSpec(n int) Spec {
	points := make([]Point, n)
	for i := range points {
		points[i] = Point{Config: ConfigSpec{HBMSlots: 32 + 8*i, Arbiter: "priority"}}
	}
	return Spec{
		Kind:     KindSweep,
		Name:     "tiny-sweep",
		Workload: &WorkloadSpec{Gen: "zipf", Cores: 4, Size: 3000, Seed: 11},
		Points:   points,
	}
}

// waitState polls until the job reaches a terminal state (or the wanted
// non-terminal one) and returns its view.
func waitState(t *testing.T, s *Service, id uint64, want State) View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := s.Get(id)
		if !ok {
			t.Fatalf("job %d disappeared", id)
		}
		if v.State == want || (v.State.Terminal() && want != v.State) {
			if v.State != want {
				t.Fatalf("job %d reached %s (err=%q), want %s", id, v.State, v.Error, want)
			}
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %d never reached %s", id, want)
	return View{}
}

func openTestService(t *testing.T, dir string, mut func(*Options)) *Service {
	t.Helper()
	opts := Options{Dir: dir, Workers: 2, JobWorkers: 2}
	if mut != nil {
		mut(&opts)
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestSimJobMatchesDirectRun(t *testing.T) {
	s := openTestService(t, t.TempDir(), nil)
	defer s.Close()
	v, err := s.Submit(testSimSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if v.ID != 1 || v.State != StateQueued {
		t.Fatalf("unexpected admission view: %+v", v)
	}
	got := waitState(t, s, v.ID, StateDone)
	if got.Result == nil || got.Result.Sim == nil {
		t.Fatalf("done sim job has no result: %+v", got)
	}

	// The service must produce exactly what a direct core.Run produces.
	spec := testSimSpec()
	wl, err := spec.Workload.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Config.Config()
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Run(cfg, wl.Raw())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Result.Sim, want) {
		t.Errorf("service result differs from direct run:\n got %+v\nwant %+v", got.Result.Sim, want)
	}
}

func TestSweepJobRowsMatchDirectSweep(t *testing.T) {
	s := openTestService(t, t.TempDir(), nil)
	defer s.Close()
	spec := testSweepSpec(3)
	v, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got := waitState(t, s, v.ID, StateDone)
	if got.Result == nil || len(got.Result.Rows) != 3 {
		t.Fatalf("want 3 rows, got %+v", got.Result)
	}

	wl, _ := spec.Workload.Build()
	for i, row := range got.Result.Rows {
		if row.Name != spec.PointName(i) {
			t.Errorf("row %d name %q, want %q", i, row.Name, spec.PointName(i))
		}
		cfg, _ := spec.Points[i].Config.Config()
		want, err := core.Run(cfg, wl.Raw())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(row.Result, want) {
			t.Errorf("row %d differs from direct run", i)
		}
	}
}

func TestExperimentJob(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full (default-scale) experiment")
	}
	s := openTestService(t, t.TempDir(), nil)
	defer s.Close()
	v, err := s.Submit(Spec{Kind: KindExperiment, Experiment: "fig3"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got := waitState(t, s, v.ID, StateDone)
	exp := got.Result.Experiment
	if exp == nil || exp.ID != "fig3" || len(exp.Tables) == 0 {
		t.Fatalf("experiment payload incomplete: %+v", exp)
	}
	if !strings.Contains(exp.Tables[0].CSV, ",") {
		t.Errorf("table CSV looks empty: %q", exp.Tables[0].CSV)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := openTestService(t, t.TempDir(), nil)
	defer s.Close()
	bad := []Spec{
		{},
		{Kind: "nope"},
		{Kind: KindSim}, // missing workload+config
		{Kind: KindSweep, Workload: &WorkloadSpec{}},       // no points
		{Kind: KindExperiment},                             // no id
		{Kind: KindExperiment, Experiment: "no-such-expt"}, // unknown id
		{Kind: KindSim, Workload: &WorkloadSpec{Gen: "uniform", Cores: 1},
			Config: &ConfigSpec{HBMSlots: 8, Arbiter: "bogus"}}, // unknown arbiter
		{Kind: KindSim, Workload: &WorkloadSpec{Gen: "uniform", Cores: 1},
			Config: &ConfigSpec{HBMSlots: 8}, TimeoutSeconds: -1},
	}
	for i, spec := range bad {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	if st := s.Stats(); st.Total() != 0 {
		t.Errorf("rejected specs created jobs: %+v", st)
	}
}

func TestQueueBackpressure(t *testing.T) {
	block := make(chan struct{})
	s := openTestService(t, t.TempDir(), func(o *Options) {
		o.Workers = 1
		o.QueueCap = 1
		o.testHookBeforeJob = func(*job) { <-block }
	})
	defer s.Close()
	defer close(block) // unblock the worker before Close waits on it

	if _, err := s.Submit(testSimSpec()); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	// Wait for the worker to pick job 1 up so the queue is empty again.
	waitState(t, s, 1, StateRunning)
	if _, err := s.Submit(testSimSpec()); err != nil {
		t.Fatalf("second submit (fills queue): %v", err)
	}
	_, err := s.Submit(testSimSpec())
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: want ErrQueueFull, got %v", err)
	}
	if reject := s.ins.rejected.Value(); reject != 1 {
		t.Errorf("serve_jobs_rejected_total = %d, want 1", reject)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	block := make(chan struct{})
	s := openTestService(t, t.TempDir(), func(o *Options) {
		o.Workers = 1
		o.testHookBeforeJob = func(*job) { <-block }
	})
	defer s.Close()
	defer close(block)

	v1, _ := s.Submit(testSimSpec())
	waitState(t, s, v1.ID, StateRunning)
	v2, _ := s.Submit(testSimSpec())

	// Queued cancel finalises immediately, without running.
	if v, err := s.Cancel(v2.ID); err != nil || v.State != StateCancelled {
		t.Fatalf("cancel queued: state=%s err=%v", v.State, err)
	}
	// Running cancel takes effect when the worker observes the context.
	if _, err := s.Cancel(v1.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	block <- struct{}{} // release the hooked worker
	got := waitState(t, s, v1.ID, StateCancelled)
	if got.Error == "" {
		t.Error("cancelled job should carry a cause")
	}
	// Cancelling a finished job conflicts.
	if _, err := s.Cancel(v1.ID); !errors.Is(err, ErrTerminal) {
		t.Errorf("cancel terminal: want ErrTerminal, got %v", err)
	}
	if _, err := s.Cancel(999); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel unknown: want ErrNotFound, got %v", err)
	}
}

func TestJobDeadline(t *testing.T) {
	s := openTestService(t, t.TempDir(), func(o *Options) {
		o.testHookBeforeJob = func(*job) { time.Sleep(80 * time.Millisecond) }
	})
	defer s.Close()
	spec := testSimSpec()
	spec.TimeoutSeconds = 0.01
	v, _ := s.Submit(spec)
	got := waitState(t, s, v.ID, StateFailed)
	if !strings.Contains(got.Error, "deadline exceeded") {
		t.Errorf("error %q should mention the deadline", got.Error)
	}
}

func TestWorkerPanicIsolation(t *testing.T) {
	first := true
	s := openTestService(t, t.TempDir(), func(o *Options) {
		o.Workers = 1
		o.testHookBeforeJob = func(*job) {
			if first {
				first = false
				panic("poisoned job")
			}
		}
	})
	defer s.Close()
	v1, _ := s.Submit(testSimSpec())
	got := waitState(t, s, v1.ID, StateFailed)
	if !strings.Contains(got.Error, "poisoned job") {
		t.Errorf("panic not captured: %q", got.Error)
	}
	// The worker survived: the next job runs normally.
	v2, _ := s.Submit(testSimSpec())
	waitState(t, s, v2.ID, StateDone)
}

// TestHardStopRecoveryBitIdentical is the in-process kill test: a sweep
// job is interrupted mid-flight by Close (no terminal record), the
// service reopens on the same directory, resumes the job from its
// journal, and the final rows are identical to an uninterrupted run in a
// fresh directory.
func TestHardStopRecoveryBitIdentical(t *testing.T) {
	dir := t.TempDir()
	spec := testSweepSpec(8)

	s1 := openTestService(t, dir, func(o *Options) { o.Workers = 1; o.JobWorkers = 1 })
	v, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let at least one row finish so the journal is non-empty, then kill.
	deadline := time.Now().Add(30 * time.Second)
	for {
		vv, _ := s1.Get(v.ID)
		if vv.Progress != nil && vv.Progress.Completed >= 1 {
			break
		}
		if vv.State.Terminal() {
			t.Fatalf("job finished before it could be interrupted; grow the sweep")
		}
		if time.Now().After(deadline) {
			t.Fatal("no progress before deadline")
		}
		time.Sleep(time.Millisecond)
	}
	s1.Close()

	s2 := openTestService(t, dir, nil)
	defer s2.Close()
	vv, ok := s2.Get(v.ID)
	if !ok || !vv.Recovered {
		t.Fatalf("job not recovered after restart: %+v", vv)
	}
	got := waitState(t, s2, v.ID, StateDone)

	s3 := openTestService(t, t.TempDir(), nil)
	defer s3.Close()
	v3, _ := s3.Submit(spec)
	want := waitState(t, s3, v3.ID, StateDone)

	if !reflect.DeepEqual(got.Result, want.Result) {
		t.Errorf("recovered rows differ from uninterrupted run")
	}
	if rec := s2.ins.recovered.Value(); rec != 1 {
		t.Errorf("serve_jobs_recovered_total = %d, want 1", rec)
	}
}

// TestSimJobCheckpointRecovery interrupts a sim job, reopens, and pins
// the resumed result against a direct run.
func TestSimJobCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{
		Kind:                 KindSim,
		Workload:             &WorkloadSpec{Gen: "zipf", Cores: 8, Size: 30000, Seed: 3},
		Config:               &ConfigSpec{HBMSlots: 64, Arbiter: "priority", RemapPeriod: 500},
		CheckpointEveryTicks: 512,
	}

	s1 := openTestService(t, dir, nil)
	v, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Interrupt once progress shows the sim mid-flight.
	deadline := time.Now().Add(30 * time.Second)
	for {
		vv, _ := s1.Get(v.ID)
		if vv.Progress != nil && vv.Progress.Completed > 0 && vv.State == StateRunning {
			break
		}
		if vv.State.Terminal() {
			t.Skip("sim too fast to interrupt on this machine")
		}
		if time.Now().After(deadline) {
			t.Fatal("no progress before deadline")
		}
	}
	s1.Close()

	s2 := openTestService(t, dir, nil)
	defer s2.Close()
	got := waitState(t, s2, v.ID, StateDone)

	wl, _ := spec.Workload.Build()
	cfg, _ := spec.Config.Config()
	want, err := core.Run(cfg, wl.Raw())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Result.Sim, want) {
		t.Errorf("resumed sim result differs from direct run")
	}
}

func TestDrainGracefulAndInterrupted(t *testing.T) {
	dir := t.TempDir()
	s := openTestService(t, dir, nil)
	v, _ := s.Submit(testSimSpec())
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("graceful drain: %v", err)
	}
	if vv, _ := s.Get(v.ID); vv.State != StateDone {
		t.Fatalf("drained job state %s, want done", vv.State)
	}
	if _, err := s.Submit(testSimSpec()); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: want ErrDraining, got %v", err)
	}
	s.Close()

	// Interrupted drain: a held job is abandoned without a terminal
	// record and recovered by the next open.
	dir2 := t.TempDir()
	block := make(chan struct{})
	s2 := openTestService(t, dir2, func(o *Options) {
		o.testHookBeforeJob = func(*job) { <-block }
	})
	v2, _ := s2.Submit(testSimSpec())
	waitState(t, s2, v2.ID, StateRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	// The hook ignores contexts (real jobs don't); release it once the
	// drain gives up so the worker can observe the shutdown cause.
	go func() { <-ctx.Done(); close(block) }()
	drainErr := s2.Drain(ctx)
	if drainErr == nil {
		t.Fatal("interrupted drain should report an error")
	}
	if vv, _ := s2.Get(v2.ID); vv.State != StateQueued {
		t.Fatalf("interrupted job state %s, want queued (resumable)", vv.State)
	}
	s2.Close()

	s3 := openTestService(t, dir2, nil)
	defer s3.Close()
	got := waitState(t, s3, v2.ID, StateDone)
	if !got.Recovered {
		t.Error("job should be marked recovered")
	}
}

// TestRecoveryRefusesChangedSpec pins the fingerprint guard: a journaled
// start fingerprint that no longer matches the spec's rebuild fails the
// job instead of replaying foreign journal rows.
func TestRecoveryRefusesChangedSpec(t *testing.T) {
	dir := t.TempDir()
	spec := testSweepSpec(2)
	man, _, err := openManifest(dir + "/jobs.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if err := man.append(manifestRecord{Op: "submit", ID: 1, Spec: &spec, Unix: 1}); err != nil {
		t.Fatal(err)
	}
	badFP := fpHex(0xdeadbeef)
	if err := man.append(manifestRecord{Op: "start", ID: 1, Fingerprint: &badFP, Unix: 2}); err != nil {
		t.Fatal(err)
	}
	man.Close()

	s := openTestService(t, dir, nil)
	defer s.Close()
	got := waitState(t, s, 1, StateFailed)
	if !strings.Contains(got.Error, "fingerprint mismatch") {
		t.Errorf("error %q should report the fingerprint mismatch", got.Error)
	}
}

func TestTerminalJobsSurviveRestartWithoutRerun(t *testing.T) {
	dir := t.TempDir()
	s1 := openTestService(t, dir, nil)
	v, _ := s1.Submit(testSimSpec())
	done := waitState(t, s1, v.ID, StateDone)
	s1.Close()

	started := false
	s2 := openTestService(t, dir, func(o *Options) {
		o.testHookBeforeJob = func(*job) { started = true }
	})
	defer s2.Close()
	vv, ok := s2.Get(v.ID)
	if !ok || vv.State != StateDone {
		t.Fatalf("terminal job not preserved: %+v", vv)
	}
	if !reflect.DeepEqual(vv.Result, done.Result) {
		t.Error("terminal payload changed across restart")
	}
	time.Sleep(20 * time.Millisecond)
	if started {
		t.Error("finished job was re-run after restart")
	}
}

func TestServeMetricsRegistered(t *testing.T) {
	reg := metrics.NewRegistry()
	s := openTestService(t, t.TempDir(), func(o *Options) { o.Metrics = reg })
	defer s.Close()
	v, _ := s.Submit(testSimSpec())
	waitState(t, s, v.ID, StateDone)
	want := map[string]bool{
		"serve_jobs_submitted_total": false,
		"serve_jobs_started_total":   false,
		"serve_jobs_finished_total":  false,
		"serve_queue_depth":          false,
		"serve_jobs_running":         false,
		"serve_workers":              false,
		"serve_job_seconds":          false,
	}
	for _, snap := range reg.Snapshot() {
		if _, ok := want[snap.Name]; ok {
			want[snap.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("metric %s not registered", name)
		}
	}
	if s.ins.submitted.Value() != 1 || s.ins.finished.Value() != 1 {
		t.Errorf("counters: submitted=%d finished=%d, want 1/1",
			s.ins.submitted.Value(), s.ins.finished.Value())
	}
}

// TestProgressEvents pins that a sweep job publishes monotone progress
// with a final completed==total update.
func TestProgressEvents(t *testing.T) {
	var views []View // appended under the service's lock, read after done
	done := make(chan struct{})
	s := openTestService(t, t.TempDir(), func(o *Options) {
		o.Workers = 1
		o.OnUpdate = func(v View) {
			views = append(views, v) // single worker + locked notify: serialized
			if v.State.Terminal() {
				select {
				case <-done:
				default:
					close(done)
				}
			}
		}
	})
	defer s.Close()
	if _, err := s.Submit(testSweepSpec(4)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("no terminal update")
	}
	prev := -1
	for _, v := range views {
		if v.Progress == nil {
			continue
		}
		if v.Progress.Completed < prev {
			t.Fatalf("progress went backwards: %d after %d", v.Progress.Completed, prev)
		}
		prev = v.Progress.Completed
	}
	if prev != 4 {
		t.Errorf("final progress %d, want 4", prev)
	}
}
