package serve

import (
	"reflect"
	"testing"

	"hbmsim/internal/core"
	"hbmsim/internal/lowerbound"
	"hbmsim/internal/metrics"
)

// TestSimJobOptGapView: with TrackOptGap on, a finished sim job's view
// carries the optimality snapshot, the competitive ratio matches the
// batch lower-bound estimate exactly, the shared registry exposes the
// competitive_ratio gauge — and the Result stays bit-identical to a
// direct run (the tracker is an observer; observers are passive).
func TestSimJobOptGapView(t *testing.T) {
	reg := metrics.NewRegistry()
	s := openTestService(t, t.TempDir(), func(o *Options) {
		o.TrackOptGap = true
		o.OptGapWindow = 64
		o.Metrics = reg
	})
	defer s.Close()
	v, err := s.Submit(testSimSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got := waitState(t, s, v.ID, StateDone)
	if got.Result == nil || got.Result.Sim == nil {
		t.Fatalf("done sim job has no result: %+v", got)
	}
	if got.OptGap == nil {
		t.Fatalf("TrackOptGap job view has no optgap snapshot: %+v", got)
	}

	spec := testSimSpec()
	wl, err := spec.Workload.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Config.Config()
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Run(cfg, wl.Raw())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Result.Sim, want) {
		t.Errorf("tracked result differs from direct run:\n got %+v\nwant %+v", got.Result.Sim, want)
	}

	bounds := lowerbound.Compute(wl, cfg.HBMSlots, cfg.Channels)
	og := got.OptGap
	if og.MeasuredTicks != uint64(want.Makespan) {
		t.Errorf("optgap measured %d ticks, makespan is %d", og.MeasuredTicks, want.Makespan)
	}
	if og.LowerBoundTicks != uint64(bounds.Makespan) {
		t.Errorf("optgap lower bound %d, batch bound %d", og.LowerBoundTicks, bounds.Makespan)
	}
	if wantRatio := lowerbound.Ratio(want.Makespan, bounds); og.CompetitiveRatio != wantRatio {
		t.Errorf("optgap ratio %v, batch ratio %v (must be bit-identical)", og.CompetitiveRatio, wantRatio)
	}
	if og.UniquePages != wl.UniquePages() {
		t.Errorf("optgap unique pages %d, workload has %d", og.UniquePages, wl.UniquePages())
	}
	if og.Windows == 0 {
		t.Error("no optimality windows closed despite the 64-tick cadence")
	}
	if g := reg.FloatGauge("competitive_ratio", "").Value(); g != og.CompetitiveRatio {
		t.Errorf("competitive_ratio gauge %v, job snapshot %v", g, og.CompetitiveRatio)
	}
}

// TestSimJobNoOptGapByDefault: without TrackOptGap the view must not
// grow an optgap member (the field is omitempty on the wire).
func TestSimJobNoOptGapByDefault(t *testing.T) {
	s := openTestService(t, t.TempDir(), nil)
	defer s.Close()
	v, err := s.Submit(testSimSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if got := waitState(t, s, v.ID, StateDone); got.OptGap != nil {
		t.Fatalf("untracked job exposes an optgap snapshot: %+v", got.OptGap)
	}
}
