package serve

import (
	"context"
	"fmt"
	"os"
	"time"

	"hbmsim/internal/core"
	"hbmsim/internal/model"
	"hbmsim/internal/sweep"
	"hbmsim/internal/telemetry"
	"hbmsim/internal/trace"
	"hbmsim/internal/tracing"
)

// runSim executes a single-simulation job with a periodic atomic
// checkpoint: every CheckpointEvery ticks the full simulator state is
// snapshotted to job-<id>.snap (tmp + fsync + rename, so a crash cannot
// tear it), and a restarted service resumes from the snapshot instead of
// re-simulating from tick zero. Determinism comes from core.Resume: the
// resumed simulator replays the identical event stream, so the final
// Result is bit-identical to an uninterrupted run.
func (s *Service) runSim(ctx context.Context, j *job) (*Payload, error) {
	wl, err := j.spec.Workload.Build()
	if err != nil {
		return nil, err
	}
	if err := s.checkFingerprint(j, wl); err != nil {
		return nil, err
	}
	if p, ok := s.cacheGet(j); ok {
		return p, nil
	}
	cfg, err := j.spec.Config.Config()
	if err != nil {
		return nil, err
	}
	snapPath := s.jobFile(j.id, ".snap")
	sim, err := s.buildSim(ctx, cfg, wl, snapPath)
	if err != nil {
		return nil, err
	}
	every := model.Tick(s.checkpointEvery(j))
	// The snapshot cadence is polled between Steps; forbid the simulator's
	// fast-forward path from jumping across a checkpoint tick.
	sim.SetBoundary(every)

	obs := &simProgress{svc: s, job: j, total: int(wl.TotalRefs()), start: time.Now()}
	if s.opts.TrackOptGap {
		// The tracker is attached ahead of the progress observer so its
		// per-tick gauge refresh runs before flush snapshots it. Gauges in
		// the shared registry are last-writer-wins across concurrent sim
		// jobs; the per-job OptGapView published by flush is authoritative.
		obs.tracker = telemetry.NewOptTracker(s.opts.Metrics, wl.Cores(),
			cfg.HBMSlots, cfg.Channels, model.Tick(s.opts.OptGapWindow))
		sim.SetObserver(core.NewMultiObserver(obs.tracker, obs))
	} else {
		sim.SetObserver(obs)
	}
	// The resumed simulator does not replay past serves; count them as
	// already completed so progress is monotone across restarts.
	obs.served = servedSoFar(sim, wl)

	const ctxCheckMask = 1<<12 - 1 // poll ctx every 4096 ticks
	var steps uint64
	for sim.Step() {
		if every > 0 && sim.Tick()%every == 0 {
			if err := s.writeSnapshot(ctx, sim, snapPath); err != nil {
				return nil, err
			}
		}
		steps++
		if steps&ctxCheckMask == 0 && ctx.Err() != nil {
			// Interrupted: snapshot once more so a resume loses at most
			// nothing (user cancels discard the job anyway; shutdowns
			// restart exactly here).
			if err := s.writeSnapshot(ctx, sim, snapPath); err != nil {
				return nil, err
			}
			return nil, context.Cause(ctx)
		}
	}
	obs.flush(true)
	res := sim.Result()
	if res.Truncated {
		return &Payload{Sim: res}, fmt.Errorf("simulation truncated at max_ticks=%d before all cores finished", cfg.MaxTicks)
	}
	return &Payload{Sim: res}, nil
}

// buildSim constructs the job's simulator, resuming from its snapshot
// when one exists (the crash-recovery path); a missing snapshot is a
// fresh start, and a snapshot that fails to load fails the job rather
// than silently recomputing — the mismatch means the spec changed.
func (s *Service) buildSim(ctx context.Context, cfg core.Config, wl *trace.Workload, snapPath string) (*core.Sim, error) {
	f, err := os.Open(snapPath)
	if os.IsNotExist(err) {
		return core.New(cfg, wl.Raw())
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sim, err := core.ResumeContext(ctx, f, cfg, wl.Raw())
	if err != nil {
		return nil, fmt.Errorf("resuming %s: %w", snapPath, err)
	}
	return sim, nil
}

// writeSnapshot checkpoints the simulator atomically: temp file, fsync,
// rename. A crash mid-write leaves the previous snapshot intact. Each
// write is timed as a "serve.checkpoint_write" span (with the
// serialisation itself nested as core.checkpoint.save) and observed in
// the serve_checkpoint_write_seconds histogram.
func (s *Service) writeSnapshot(ctx context.Context, sim *core.Sim, path string) error {
	cctx, sp := tracing.StartSpan(ctx, "serve.checkpoint_write")
	t0 := time.Now()
	err := writeSnapshotFile(cctx, sim, path)
	s.ins.checkpointWrite.Observe(time.Since(t0).Seconds())
	sp.SetAttrUint("tick", uint64(sim.Tick()))
	sp.EndErr(err)
	return err
}

func writeSnapshotFile(ctx context.Context, sim *core.Sim, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := sim.CheckpointContext(ctx, f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// servedSoFar estimates references already served before this (resumed)
// run from the simulator's per-core cursors.
func servedSoFar(sim *core.Sim, wl *trace.Workload) int {
	total := int(wl.TotalRefs())
	rem := sim.Remaining()
	if rem > total {
		return 0
	}
	return total - rem
}

// simProgress counts serves and pushes throttled progress updates into
// the job (and from there to SSE subscribers and /progress), along with
// the live optimality snapshot when a tracker is attached.
type simProgress struct {
	core.NopObserver
	svc     *Service
	job     *job
	tracker *telemetry.OptTracker
	served  int
	total   int
	start   time.Time
	ticks   uint64
}

func (p *simProgress) OnServe(model.CoreID, model.PageID, model.Tick, model.Tick) {
	p.served++
}

func (p *simProgress) OnTickEnd(model.Tick, int, int) {
	p.ticks++
	if p.ticks&(1<<14-1) == 0 { // every 16384 ticks
		p.flush(false)
	}
}

// flush publishes the current counts as a sweep.Progress (the service's
// single progress currency), plus the optimality snapshot when tracked.
// It runs on the simulation goroutine, so reading the tracker races with
// nothing.
func (p *simProgress) flush(final bool) {
	elapsed := time.Since(p.start)
	prog := sweep.Progress{Completed: p.served, Total: p.total, Elapsed: elapsed}
	if final {
		prog.Completed = p.total
	} else if p.served > 0 && p.served < p.total {
		perRef := elapsed / time.Duration(p.served)
		prog.ETA = perRef * time.Duration(p.total-p.served)
	}
	var og *OptGapView
	if p.tracker != nil {
		snap := p.tracker.Snapshot()
		og = &OptGapView{
			CompetitiveRatio: snap.Ratio,
			LowerBoundTicks:  uint64(snap.LowerBound),
			MeasuredTicks:    uint64(snap.Tick),
			UniquePages:      snap.UniquePages,
			MissRatio:        snap.MissRatio,
			P90StackDistance: snap.P90Distance,
			Windows:          len(p.tracker.Points()),
		}
	}
	p.svc.pushSimProgress(p.job, prog, og)
}
