package introspect

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"
	"time"

	"hbmsim/internal/metrics"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestMetricsEndpoint is the acceptance check for /metrics: Prometheus
// text format, counters monotone across scrapes, histogram buckets
// cumulative within a scrape.
func TestMetricsEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	c := reg.Counter("hbmsim_serves_total", "references served")
	h := reg.Histogram("sweep_job_seconds", "per-job wall time", []float64{0.1, 1, 10})
	srv := httptest.NewServer(New(reg, nil).Handler())
	defer srv.Close()

	scrape := func() string {
		code, body := get(t, srv, "/metrics")
		if code != http.StatusOK {
			t.Fatalf("/metrics status %d", code)
		}
		return body
	}

	c.Add(3)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100)
	first := scrape()

	counterRe := regexp.MustCompile(`(?m)^hbmsim_serves_total (\d+)$`)
	m := counterRe.FindStringSubmatch(first)
	if m == nil {
		t.Fatalf("counter sample missing from scrape:\n%s", first)
	}
	v1, _ := strconv.Atoi(m[1])
	if v1 != 3 {
		t.Fatalf("counter = %d, want 3", v1)
	}
	if want := "# TYPE hbmsim_serves_total counter"; !regexp.MustCompile(regexp.QuoteMeta(want)).MatchString(first) {
		t.Fatalf("missing TYPE line in:\n%s", first)
	}

	// Histogram buckets: cumulative in le, +Inf equals _count.
	bucketRe := regexp.MustCompile(`(?m)^sweep_job_seconds_bucket\{le="([^"]+)"\} (\d+)$`)
	buckets := bucketRe.FindAllStringSubmatch(first, -1)
	if len(buckets) != 4 {
		t.Fatalf("want 4 buckets, got %v", buckets)
	}
	prev := -1
	for _, b := range buckets {
		n, _ := strconv.Atoi(b[2])
		if n < prev {
			t.Fatalf("buckets not cumulative: %v", buckets)
		}
		prev = n
	}
	if lastLe := buckets[len(buckets)-1][1]; lastLe != "+Inf" {
		t.Fatalf("final bucket le = %s, want +Inf", lastLe)
	}
	countRe := regexp.MustCompile(`(?m)^sweep_job_seconds_count (\d+)$`)
	cm := countRe.FindStringSubmatch(first)
	if cm == nil || cm[1] != buckets[len(buckets)-1][2] {
		t.Fatalf("+Inf bucket %s != _count %v", buckets[len(buckets)-1][2], cm)
	}

	// Counters are monotone across scrapes.
	c.Add(2)
	second := scrape()
	v2, _ := strconv.Atoi(counterRe.FindStringSubmatch(second)[1])
	if v2 < v1 || v2 != 5 {
		t.Fatalf("counter not monotone: %d then %d", v1, v2)
	}
}

// TestPprofProfileEndpoint: /debug/pprof/profile returns a valid (gzipped
// protobuf, non-empty) CPU profile.
func TestPprofProfileEndpoint(t *testing.T) {
	srv := httptest.NewServer(New(metrics.NewRegistry(), nil).Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/pprof/profile?seconds=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("profile status %d: %s", resp.StatusCode, body)
	}
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatalf("profile is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("profile gunzip: %v", err)
	}
	if len(raw) == 0 {
		t.Fatal("profile is empty")
	}
}

func TestProgressEndpoint(t *testing.T) {
	prog := &Progress{}
	srv := httptest.NewServer(New(nil, prog).Handler())
	defer srv.Close()

	prog.SetPhase("fig3", 40)
	prog.Update(10, 40, 1, 2*time.Second, 6*time.Second)
	code, body := get(t, srv, "/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress status %d", code)
	}
	var snap ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("progress JSON: %v\n%s", err, body)
	}
	want := ProgressSnapshot{Phase: "fig3", Completed: 10, Total: 40, Failed: 1,
		Percent: 25, ElapsedSeconds: 2, ETASeconds: 6}
	if snap != want {
		t.Fatalf("progress = %+v, want %+v", snap, want)
	}
}

func TestVarsEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("hbmsim_ticks_total", "").Add(9)
	srv := httptest.NewServer(New(reg, nil).Handler())
	defer srv.Close()

	code, body := get(t, srv, "/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("vars is not JSON: %v\n%s", err, body)
	}
	if _, ok := doc["memstats"]; !ok {
		t.Fatal("vars missing expvar's memstats")
	}
	var ms map[string]struct {
		Kind  string  `json:"kind"`
		Value float64 `json:"value"`
	}
	if err := json.Unmarshal(doc["metrics"], &ms); err != nil {
		t.Fatalf("vars metrics block: %v", err)
	}
	if got := ms["hbmsim_ticks_total"]; got.Kind != "counter" || got.Value != 9 {
		t.Fatalf("metrics block = %+v", ms)
	}
}

func TestServerStartClose(t *testing.T) {
	srv := New(metrics.NewRegistry(), &Progress{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if srv.Addr() != addr {
		t.Fatalf("Addr %q != Start %q", srv.Addr(), addr)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("index status %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// A never-started server's Close is a no-op.
	if err := New(nil, nil).Close(); err != nil {
		t.Fatal(err)
	}
}

func TestParseLogLevel(t *testing.T) {
	for in, want := range map[string]string{
		"debug": "DEBUG", "info": "INFO", "Warn": "WARN", "ERROR": "ERROR", "": "INFO",
	} {
		lvl, err := ParseLogLevel(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if lvl.String() != want {
			t.Fatalf("%q -> %v, want %s", in, lvl, want)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Fatal("bad level accepted")
	}
}
