package introspect

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hbmsim/internal/tracing"
)

func TestHealthzEndpoint(t *testing.T) {
	s := New(nil, nil)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "serving") {
		t.Fatalf("healthy probe: status %d body %q", code, body)
	}

	s.SetHealth("draining: waiting for 2 jobs")
	code, body = get(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining probe: status %d, want 503", code)
	}
	var doc map[string]string
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("draining body not JSON: %v", err)
	}
	if doc["status"] != "unavailable" || !strings.Contains(doc["reason"], "draining") {
		t.Errorf("draining body = %v", doc)
	}

	s.SetHealth("")
	if code, _ := get(t, srv, "/healthz"); code != http.StatusOK {
		t.Fatalf("recovered probe: status %d, want 200", code)
	}
}

func TestTraceEndpointDisabled(t *testing.T) {
	srv := httptest.NewServer(New(nil, nil).Handler())
	defer srv.Close()
	if code, _ := get(t, srv, "/debug/trace"); code != http.StatusNotFound {
		t.Fatalf("/debug/trace without a tracer: status %d, want 404", code)
	}
}

// traceFixture builds a tracer with two finished traces (job 1, job 2)
// and one still-open span under job 2.
func traceFixture(t *testing.T) (*tracing.Tracer, tracing.Span) {
	t.Helper()
	tr := tracing.New(tracing.Options{})
	ctx1, root1 := tr.StartRoot(context.Background(), "serve.job")
	root1.SetAttr("job", "1")
	_, c1 := tracing.StartSpan(ctx1, "serve.queue_wait")
	c1.End()
	root1.End()
	_, root2 := tr.StartRoot(context.Background(), "serve.job")
	root2.SetAttr("job", "2")
	return tr, root2
}

func TestTraceEndpointJSONAndFilters(t *testing.T) {
	tr, open := traceFixture(t)
	defer open.End()
	s := New(nil, nil)
	s.EnableTrace(tr)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	read := func(path string) traceView {
		code, body := get(t, srv, path)
		if code != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, code)
		}
		var v traceView
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Fatalf("GET %s: not JSON: %v", path, err)
		}
		return v
	}

	all := read("/debug/trace")
	if len(all.OpenSpans) != 1 || all.OpenSpans[0].Name != "serve.job" || !all.OpenSpans[0].Open {
		t.Errorf("open spans = %+v", all.OpenSpans)
	}
	if len(all.RecentSpans) != 2 {
		t.Errorf("got %d recent spans, want 2", len(all.RecentSpans))
	}

	byJob := read("/debug/trace?job=2")
	if len(byJob.OpenSpans) != 1 || len(byJob.RecentSpans) != 0 {
		t.Errorf("job=2 filter: open %d recent %d, want 1/0", len(byJob.OpenSpans), len(byJob.RecentSpans))
	}
	if byJob.OpenSpans[0].Trace != open.Trace().String() {
		t.Errorf("job=2 returned trace %s, want %s", byJob.OpenSpans[0].Trace, open.Trace())
	}

	byTrace := read("/debug/trace?trace=" + open.Trace().String())
	if len(byTrace.OpenSpans) != 1 {
		t.Errorf("trace filter: open %d, want 1", len(byTrace.OpenSpans))
	}
	none := read("/debug/trace?job=99")
	if len(none.OpenSpans)+len(none.RecentSpans) != 0 {
		t.Errorf("unknown job filter returned spans: %+v", none)
	}
}

func TestTraceEndpointPerfetto(t *testing.T) {
	tr, open := traceFixture(t)
	defer open.End()
	s := New(nil, nil)
	s.EnableTrace(tr)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/trace?format=perfetto")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, "attachment") {
		t.Errorf("Content-Disposition = %q, want attachment", cd)
	}
	var events []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatalf("perfetto body not a JSON array: %v", err)
	}
	var slices int
	for _, ev := range events {
		if ev["ph"] == "X" {
			slices++
		}
	}
	if slices != 3 { // 2 finished + 1 open
		t.Errorf("got %d slices, want 3", slices)
	}
}

func TestTracedHandlerInjectsAndTees(t *testing.T) {
	tr := tracing.New(tracing.Options{})
	fr := tracing.NewFlightRecorder(tr, 16)
	var buf bytes.Buffer
	h := NewTracedHandler(slog.NewTextHandler(&buf, nil), fr)
	logger := slog.New(h)

	ctx, sp := tr.StartRoot(context.Background(), "serve.job")
	defer sp.End()
	logger.InfoContext(ctx, "picked up", "job", 7)
	logger.Info("no span here")

	out := buf.String()
	if !strings.Contains(out, "trace="+sp.Trace().String()) || !strings.Contains(out, "span="+sp.ID().String()) {
		t.Errorf("log line lacks trace/span attrs:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Contains(lines[1], "trace=") {
		t.Errorf("span-less log line gained a trace attr: %s", lines[1])
	}

	logs := fr.Logs()
	if len(logs) != 2 {
		t.Fatalf("flight recorder captured %d records, want 2", len(logs))
	}
	if logs[0].Msg != "picked up" || logs[0].Trace != sp.Trace().String() {
		t.Errorf("teed record = %+v", logs[0])
	}
	var gotJob bool
	for _, a := range logs[0].Attrs {
		if a.Key == "job" && a.Value == "7" {
			gotJob = true
		}
	}
	if !gotJob {
		t.Errorf("teed record lost its attrs: %+v", logs[0].Attrs)
	}
	if logs[1].Trace != "" {
		t.Errorf("span-less teed record carries trace %q", logs[1].Trace)
	}
}

func TestTracedHandlerWithAttrsAndGroup(t *testing.T) {
	var buf bytes.Buffer
	h := NewTracedHandler(slog.NewTextHandler(&buf, nil), nil)
	logger := slog.New(h).With("component", "sweep").WithGroup("g")
	logger.Info("hello", "k", "v")
	out := buf.String()
	if !strings.Contains(out, "component=sweep") || !strings.Contains(out, "g.k=v") {
		t.Errorf("WithAttrs/WithGroup not forwarded:\n%s", out)
	}
}

func TestSetupTracedLogging(t *testing.T) {
	prev := slog.Default()
	defer slog.SetDefault(prev)

	fr := tracing.NewFlightRecorder(nil, 8)
	var buf bytes.Buffer
	if _, err := SetupTracedLogging(&buf, "warn", fr); err != nil {
		t.Fatal(err)
	}
	slog.Info("dropped")
	slog.Warn("kept")
	if strings.Contains(buf.String(), "dropped") || !strings.Contains(buf.String(), "kept") {
		t.Errorf("level filter broken:\n%s", buf.String())
	}
	logs := fr.Logs()
	if len(logs) != 1 || logs[0].Msg != "kept" || logs[0].Level != "WARN" {
		t.Errorf("flight recorder logs = %+v", logs)
	}

	if _, err := SetupTracedLogging(&buf, "nope", nil); err == nil {
		t.Error("SetupTracedLogging accepted an unknown level")
	}
}

func TestSetupLogging(t *testing.T) {
	prev := slog.Default()
	defer slog.SetDefault(prev)

	var buf bytes.Buffer
	lvl, err := SetupLogging(&buf, "error")
	if err != nil || lvl != slog.LevelError {
		t.Fatalf("SetupLogging: %v %v", lvl, err)
	}
	slog.Warn("dropped")
	slog.Error("kept")
	if strings.Contains(buf.String(), "dropped") || !strings.Contains(buf.String(), "kept") {
		t.Errorf("level filter broken:\n%s", buf.String())
	}
	if _, err := SetupLogging(&buf, "bogus"); err == nil {
		t.Error("SetupLogging accepted an unknown level")
	}
}

func TestIndexMentionsTraceEndpoints(t *testing.T) {
	srv := httptest.NewServer(New(nil, nil).Handler())
	defer srv.Close()
	code, body := get(t, srv, "/")
	if code != http.StatusOK {
		t.Fatalf("/ status %d", code)
	}
	for _, want := range []string{"/healthz", "/debug/trace"} {
		if !strings.Contains(body, want) {
			t.Errorf("index page does not mention %s:\n%s", want, body)
		}
	}
}
