package introspect

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hbmsim/internal/metrics"
)

// TestConcurrentScrapeAndChurn hammers every read endpoint while worker
// goroutines mutate the registry and the progress tracker, pinning that
// /metrics, /progress, and /debug/vars never race with live updates.
// Run under `make test-race`; the race detector is the assertion.
func TestConcurrentScrapeAndChurn(t *testing.T) {
	reg := metrics.NewRegistry()
	prog := &Progress{}
	srv := httptest.NewServer(New(reg, prog).Handler())
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Churners: counters/gauges/histograms plus progress updates, the mix
	// a live sweep produces. New instruments register mid-flight too —
	// scrapes must tolerate a growing registry.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("churn_total", "events")
			g := reg.Gauge("churn_depth", "depth")
			h := reg.Histogram("churn_seconds", "latency", metrics.ExpBuckets(0.001, 2, 10))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Inc()
				h.Observe(float64(i%7) * 0.003)
				g.Dec()
				prog.Update(i, 1000, i%3, time.Duration(i)*time.Millisecond, 0)
				if i%100 == w {
					prog.SetPhase("phase", 1000)
					reg.Counter("late_total", "registered mid-scrape").Inc()
				}
			}
		}(w)
	}

	// Scrapers: concurrent readers over every introspection endpoint.
	paths := []string{"/metrics", "/progress", "/debug/vars", "/"}
	for _, path := range paths {
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func(path string) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					resp, err := srv.Client().Get(srv.URL + path)
					if err != nil {
						t.Errorf("%s: %v", path, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("%s: status %d", path, resp.StatusCode)
						return
					}
				}
			}(path)
		}
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestHandleMountsBeforeStart pins the Handle contract used by
// cmd/hbmserved: extra routes are served alongside the built-ins and
// are concurrency-safe to scrape.
func TestHandleMountsBeforeStart(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New(reg, nil)
	s.Handle("/jobs", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("[]"))
	}))
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "[]" {
		t.Fatalf("mounted route body %q", body)
	}
	// Built-ins still there.
	resp, err = srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d after Handle", resp.StatusCode)
	}
}
