package introspect

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"

	"hbmsim/internal/tracing"
)

// EnableTrace mounts the /debug/trace endpoint over the given tracer.
// Call before Start/Handler, like Handle. A nil tracer leaves the
// endpoint returning 404 (tracing disabled).
func (s *Server) EnableTrace(tr *tracing.Tracer) {
	s.extraMu.Lock()
	defer s.extraMu.Unlock()
	s.tracer = tr
}

// SetHealth sets the /healthz state: an empty reason means serving
// (200), a non-empty reason means unavailable (503 carrying the reason)
// — hbmserved sets "draining: ..." when graceful shutdown begins, so
// load balancers stop routing new submissions while in-flight jobs
// finish.
func (s *Server) SetHealth(reason string) {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	s.healthReason = reason
}

// handleHealthz serves the readiness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.healthMu.Lock()
	reason := s.healthReason
	s.healthMu.Unlock()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if reason == "" {
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, "{\"status\":\"serving\"}\n")
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	_ = json.NewEncoder(w).Encode(map[string]string{"status": "unavailable", "reason": reason})
}

// traceView is the JSON document served at /debug/trace.
type traceView struct {
	OpenSpans   []tracing.SpanJSON `json:"open_spans"`
	RecentSpans []tracing.SpanJSON `json:"recent_spans"`
}

// handleTrace serves the tracer's recent window:
//
//	GET /debug/trace                     open + recent spans, JSON
//	GET /debug/trace?trace=<32 hex>      one trace only
//	GET /debug/trace?job=<id>            traces whose spans carry job=<id>
//	GET /debug/trace?format=perfetto     same records as a Perfetto/Chrome
//	                                     trace-event download
//
// Filters compose with format; an unknown trace or job simply yields an
// empty document (the spans may have aged out of the ring).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr := s.tracer
	if tr == nil {
		http.Error(w, "tracing disabled (restart with -trace)", http.StatusNotFound)
		return
	}
	open, recent := tr.Active(), tr.Recent()
	if q := r.URL.Query(); q.Get("trace") != "" || q.Get("job") != "" {
		keep := matchingTraces(q.Get("trace"), q.Get("job"), open, recent)
		open = filterRecords(open, keep)
		recent = filterRecords(recent, keep)
	}
	if r.URL.Query().Get("format") == "perfetto" {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("Content-Disposition", `attachment; filename="hbmsim-trace.json"`)
		// Finished spans first (oldest-first), open ones after, so track
		// naming sees each trace's earliest record.
		_ = tracing.WritePerfetto(w, append(recent, open...))
		return
	}
	view := traceView{OpenSpans: []tracing.SpanJSON{}, RecentSpans: []tracing.SpanJSON{}}
	for _, rec := range open {
		view.OpenSpans = append(view.OpenSpans, tracing.SpanRecordJSON(rec))
	}
	for _, rec := range recent {
		view.RecentSpans = append(view.RecentSpans, tracing.SpanRecordJSON(rec))
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(view)
}

// matchingTraces returns the set of trace IDs selected by the trace/job
// filters: an explicit trace ID, plus every trace any of whose spans
// carries a job attribute equal to job.
func matchingTraces(traceHex, job string, sets ...[]tracing.SpanRecord) map[tracing.TraceID]bool {
	keep := make(map[tracing.TraceID]bool)
	for _, recs := range sets {
		for i := range recs {
			if traceHex != "" && recs[i].Trace.String() == traceHex {
				keep[recs[i].Trace] = true
			}
			if job != "" && recs[i].AttrValue("job") == job {
				keep[recs[i].Trace] = true
			}
		}
	}
	return keep
}

func filterRecords(recs []tracing.SpanRecord, keep map[tracing.TraceID]bool) []tracing.SpanRecord {
	out := recs[:0]
	for _, rec := range recs {
		if keep[rec.Trace] {
			out = append(out, rec)
		}
	}
	return out
}

// tracedHandler decorates a slog.Handler with the tracing layer: records
// whose context carries a sampled span gain trace= and span= attributes
// (so one grep pivots from a log line to its whole trace on
// /debug/trace), and every record is teed into the flight recorder's
// bounded log ring so crash dumps carry the last log lines alongside the
// open spans.
type tracedHandler struct {
	inner slog.Handler
	fr    *tracing.FlightRecorder
}

// NewTracedHandler wraps inner. fr may be nil (attribute injection
// only).
func NewTracedHandler(inner slog.Handler, fr *tracing.FlightRecorder) slog.Handler {
	return &tracedHandler{inner: inner, fr: fr}
}

func (h *tracedHandler) Enabled(ctx context.Context, lvl slog.Level) bool {
	return h.inner.Enabled(ctx, lvl)
}

func (h *tracedHandler) Handle(ctx context.Context, rec slog.Record) error {
	sp := tracing.SpanFromContext(ctx)
	if sp.Sampled() {
		rec.AddAttrs(
			slog.String("trace", sp.Trace().String()),
			slog.String("span", sp.ID().String()))
	}
	if h.fr != nil {
		lr := tracing.LogRecord{
			TimeUnixNano: rec.Time.UnixNano(),
			Level:        rec.Level.String(),
			Msg:          rec.Message,
		}
		if sp.Sampled() {
			lr.Trace = sp.Trace().String()
			lr.Span = sp.ID().String()
		}
		rec.Attrs(func(a slog.Attr) bool {
			lr.Attrs = append(lr.Attrs, tracing.Attr{Key: a.Key, Value: a.Value.String()})
			return true
		})
		h.fr.AddLog(lr)
	}
	return h.inner.Handle(ctx, rec)
}

func (h *tracedHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &tracedHandler{inner: h.inner.WithAttrs(attrs), fr: h.fr}
}

func (h *tracedHandler) WithGroup(name string) slog.Handler {
	return &tracedHandler{inner: h.inner.WithGroup(name), fr: h.fr}
}

// SetupTracedLogging is SetupLogging with the tracing decoration: the
// installed default logger stamps trace/span IDs from record contexts
// and feeds the flight recorder's log ring (fr may be nil).
func SetupTracedLogging(w io.Writer, level string, fr *tracing.FlightRecorder) (slog.Level, error) {
	lvl, err := ParseLogLevel(level)
	if err != nil {
		return 0, err
	}
	inner := slog.NewTextHandler(w, &slog.HandlerOptions{Level: lvl})
	slog.SetDefault(slog.New(NewTracedHandler(inner, fr)))
	return lvl, nil
}
