package introspect

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLogLevel maps the CLI's -log-level values onto slog levels.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("introspect: unknown log level %q (want debug|info|warn|error)", s)
}

// SetupLogging installs a text slog handler at the given level on w as the
// process default logger, and returns the parsed level.
func SetupLogging(w io.Writer, level string) (slog.Level, error) {
	lvl, err := ParseLogLevel(level)
	if err != nil {
		return 0, err
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: lvl})))
	return lvl, nil
}
