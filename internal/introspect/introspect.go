// Package introspect serves a running hbmsim/hbmsweep process's live
// state over HTTP: Prometheus-text metrics on /metrics, expvar-style JSON
// on /debug/vars, the full net/http/pprof suite on /debug/pprof/, and a
// small sweep-progress JSON view on /progress. The server is strictly
// opt-in (the -http flag): when it is off, no listener is opened and no
// instrument is registered, so the simulation path is byte-identical to an
// uninstrumented run.
package introspect

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"hbmsim/internal/metrics"
	"hbmsim/internal/tracing"
)

// Progress tracks the phase and completion state of a long-running job
// list for the /progress endpoint. All methods are safe for concurrent
// use; the zero value is ready.
type Progress struct {
	mu        sync.Mutex
	phase     string
	completed int
	total     int
	failed    int
	elapsed   time.Duration
	eta       time.Duration
}

// ProgressSnapshot is the JSON shape served at /progress.
type ProgressSnapshot struct {
	// Phase names the currently running stage (e.g. an experiment id).
	Phase string `json:"phase"`
	// Completed/Total/Failed count jobs in the current phase; Total is 0
	// when unknown.
	Completed int `json:"completed"`
	Total     int `json:"total"`
	Failed    int `json:"failed"`
	// Percent is 100*Completed/Total, 0 when Total is unknown.
	Percent float64 `json:"percent"`
	// ElapsedSeconds and ETASeconds are wall-clock measures of the
	// current phase.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	ETASeconds     float64 `json:"eta_seconds"`
}

// SetPhase names the running stage and resets the completion counters
// (total 0 = unknown).
func (p *Progress) SetPhase(phase string, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.phase = phase
	p.completed, p.total, p.failed = 0, total, 0
	p.elapsed, p.eta = 0, 0
}

// Update records the latest completion counts; it matches the shape of
// sweep.Progress so callers can forward updates directly.
func (p *Progress) Update(completed, total, failed int, elapsed, eta time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.completed, p.total, p.failed = completed, total, failed
	p.elapsed, p.eta = elapsed, eta
}

// Snapshot returns the current state.
func (p *Progress) Snapshot() ProgressSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := ProgressSnapshot{
		Phase:          p.phase,
		Completed:      p.completed,
		Total:          p.total,
		Failed:         p.failed,
		ElapsedSeconds: p.elapsed.Seconds(),
		ETASeconds:     p.eta.Seconds(),
	}
	if p.total > 0 {
		s.Percent = 100 * float64(p.completed) / float64(p.total)
	}
	return s
}

// Server is the opt-in introspection endpoint. Construct with New, then
// Start it on an address; Close stops the listener. The zero value is not
// usable.
type Server struct {
	reg  *metrics.Registry
	prog *Progress
	srv  *http.Server
	ln   net.Listener

	extraMu sync.Mutex
	extra   []extraRoute
	tracer  *tracing.Tracer // /debug/trace source; nil = endpoint disabled

	healthMu     sync.Mutex
	healthReason string // "" = serving; non-empty = 503 with this reason
}

// extraRoute is a caller-mounted handler (see Handle).
type extraRoute struct {
	pattern string
	h       http.Handler
}

// New builds a server over the given registry and progress tracker (either
// may be nil; the corresponding endpoints then serve empty documents).
func New(reg *metrics.Registry, prog *Progress) *Server {
	return &Server{reg: reg, prog: prog}
}

// Handle mounts an additional handler on the server — cmd/hbmserved uses
// it to expose the job API beside /metrics and /progress. Patterns use
// net/http.ServeMux syntax and must be registered before Start/Handler.
func (s *Server) Handle(pattern string, h http.Handler) {
	s.extraMu.Lock()
	defer s.extraMu.Unlock()
	s.extra = append(s.extra, extraRoute{pattern: pattern, h: h})
}

// Handler returns the server's routing table — also usable directly under
// httptest.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.extraMu.Lock()
	for _, e := range s.extra {
		mux.Handle(e.pattern, e.h)
	}
	s.extraMu.Unlock()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/trace", s.handleTrace)
	mux.HandleFunc("/debug/vars", s.handleVars)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/", s.handleIndex)
	return mux
}

// Start opens a listener on addr (e.g. ":8080" or "127.0.0.1:0") and
// serves in a background goroutine. It returns the bound address, useful
// when addr requested an ephemeral port.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("introspect: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go s.srv.Serve(ln) // Serve returns ErrServerClosed on Close; nothing to do with it
	return ln.Addr().String(), nil
}

// Addr returns the bound address, or "" before Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener. Safe to call on a never-started server.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.reg != nil {
		// Write errors mean the scraper hung up; nothing useful to do.
		_ = s.reg.WritePrometheus(w)
	}
}

// handleVars serves expvar's built-in vars (cmdline, memstats) merged with
// the registry, without touching the expvar global namespace — several
// servers (tests) can coexist in one process.
func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	first := true
	expvar.Do(func(kv expvar.KeyValue) {
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
	})
	if s.reg != nil {
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		fmt.Fprintf(w, "%q: ", "metrics")
		_ = s.reg.WriteJSON(w)
	}
	fmt.Fprintf(w, "\n}\n")
}

func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	var snap ProgressSnapshot
	if s.prog != nil {
		snap = s.prog.Snapshot()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snap)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `hbmsim live introspection
  /metrics        Prometheus text exposition
  /healthz        readiness probe (503 + reason while draining)
  /progress       sweep progress JSON (completed/total, ETA)
  /debug/trace    recent + open spans (?trace=, ?job=, ?format=perfetto)
  /debug/vars     expvar JSON (cmdline, memstats, metrics)
  /debug/pprof/   CPU, heap, goroutine, ... profiles
`)
}
