package knl

import "fmt"

// PropertyResult is the outcome of checking one of §5's four model
// properties against the machine.
type PropertyResult struct {
	// ID is 1-4, matching the paper's Property numbering in §5.
	ID int
	// Description restates the property.
	Description string
	// Holds reports whether the machine exhibits the property.
	Holds bool
	// Detail quantifies the check.
	Detail string
}

// CheckProperties evaluates the four properties the paper validates on
// KNL (§5) against this machine. A correctly calibrated machine — such as
// Default() — satisfies all four, meaning the HBM+DRAM model's
// abstractions are consistent with the (modelled) hardware.
func (m Machine) CheckProperties() ([]PropertyResult, error) {
	const (
		mib = uint64(1) << 20
		gib = uint64(1) << 30
	)
	var out []PropertyResult

	// P1: HBM and DRAM have similar latency when accessed directly.
	// The paper observes a ~24ns gap on 16MiB-8GiB arrays, small relative
	// to the ~170-340ns absolute latency.
	var worstRel float64
	for _, s := range []uint64{16 * mib, 256 * mib, 1 * gib, 8 * gib} {
		d, err := m.ChaseLatencyNS(s, FlatDRAM)
		if err != nil {
			return nil, err
		}
		h, err := m.ChaseLatencyNS(s, FlatHBM)
		if err != nil {
			return nil, err
		}
		rel := (h - d) / d
		if rel < 0 {
			rel = -rel
		}
		if rel > worstRel {
			worstRel = rel
		}
	}
	out = append(out, PropertyResult{
		ID:          1,
		Description: "HBM and DRAM have similar direct-access latency",
		Holds:       worstRel < 0.25,
		Detail:      fmt.Sprintf("worst relative latency gap %.1f%% (paper: ~10%%, 24ns)", 100*worstRel),
	})

	// P2: HBM has substantially higher bandwidth than DRAM (4.3-4.8x on
	// the paper's KNL).
	bd, err := m.GLUPSBandwidthMiBs(8*gib, m.Threads, FlatDRAM)
	if err != nil {
		return nil, err
	}
	bh, err := m.GLUPSBandwidthMiBs(8*gib, m.Threads, FlatHBM)
	if err != nil {
		return nil, err
	}
	ratio := bh / bd
	out = append(out, PropertyResult{
		ID:          2,
		Description: "HBM bandwidth greatly exceeds DRAM bandwidth",
		Holds:       ratio >= 3,
		Detail:      fmt.Sprintf("HBM/DRAM bandwidth ratio %.2fx (paper: 4.3-4.8x)", ratio),
	})

	// P3: a cache-mode miss to DRAM costs about double an HBM hit, once
	// the shared-L2 baseline is subtracted (paper: ~160ns to HBM vs 300+ns
	// to DRAM beyond the mesh baseline).
	hitLat, err := m.ChaseLatencyNS(8*gib, Cache) // fits: pure HBM hits
	if err != nil {
		return nil, err
	}
	missLat := m.memoryLatencyNS(64*gib, Cache) // far past HBM: mostly misses
	base := m.SharedL2NS
	missOver := missLat - base
	hitOver := hitLat - base
	p3ratio := missOver / hitOver
	out = append(out, PropertyResult{
		ID:          3,
		Description: "cache-mode DRAM miss costs ~2x an HBM hit (beyond the mesh baseline)",
		Holds:       p3ratio >= 1.3,
		Detail:      fmt.Sprintf("miss/hit latency ratio beyond baseline %.2fx (paper: ~2x)", p3ratio),
	})

	// P4: past HBM capacity, cache-mode bandwidth collapses because of the
	// far-channel bottleneck, but remains above flat DRAM.
	inHBM, err := m.GLUPSBandwidthMiBs(8*gib, m.Threads, Cache)
	if err != nil {
		return nil, err
	}
	pastHBM, err := m.GLUPSBandwidthMiBs(32*gib, m.Threads, Cache)
	if err != nil {
		return nil, err
	}
	holds := pastHBM < 0.75*inHBM && pastHBM > bd
	out = append(out, PropertyResult{
		ID:          4,
		Description: "cache-mode bandwidth drops past HBM capacity but stays above DRAM",
		Holds:       holds,
		Detail: fmt.Sprintf("in-HBM %.0f MiB/s, 2x-HBM %.0f MiB/s, DRAM %.0f MiB/s (paper: 310k -> 149k > 68k)",
			inHBM, pastHBM, bd),
	})
	return out, nil
}
