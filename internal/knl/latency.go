package knl

import (
	"fmt"
	"math/rand"
)

// ChaseLatencyNS returns the expected per-operation latency of the paper's
// pointer-chasing microbenchmark (x := a[x] over a random-cycle array of
// the given size) in the given mode: the hit-fraction-weighted cost across
// the hierarchy. FlatHBM is only available while the array fits in HBM,
// exactly as on the real machine ("we stop the experiment early for HBM").
func (m Machine) ChaseLatencyNS(arrayBytes uint64, mode Mode) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if arrayBytes == 0 {
		return 0, fmt.Errorf("knl: array size must be positive")
	}
	if mode == FlatHBM && arrayBytes > m.HBMBytes {
		return 0, fmt.Errorf("knl: cannot allocate %d bytes in %d-byte HBM (flat mode)", arrayBytes, m.HBMBytes)
	}

	// Fractions of a uniformly random access served by each cache tier.
	fL1 := frac(arrayBytes, 0, m.L1Bytes)
	fL2 := frac(arrayBytes, m.L1Bytes, m.L2Bytes)
	fSL2 := frac(arrayBytes, m.L2Bytes, m.SharedL2Bytes)
	fMem := 1 - fL1 - fL2 - fSL2
	if fMem < 0 {
		fMem = 0
	}

	lat := fL1*m.L1NS + fL2*m.L2NS + fSL2*m.SharedL2NS
	if fMem > 0 {
		lat += fMem * m.memoryLatencyNS(arrayBytes, mode)
	}
	return lat, nil
}

// frac returns the fraction of a size-s array resident in the tier that
// spans capacities (lo, hi].
func frac(s, lo, hi uint64) float64 {
	if s == 0 {
		return 0
	}
	resLo := min64(s, lo)
	resHi := min64(s, hi)
	return float64(resHi-resLo) / float64(s)
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// memoryLatencyNS is the cost of an access that misses every cache tier
// and reaches main memory in the given mode.
func (m Machine) memoryLatencyNS(arrayBytes uint64, mode Mode) float64 {
	dram := m.DRAMBaseNS + m.walkOverheadNS(arrayBytes)
	switch mode {
	case FlatDRAM:
		return dram
	case FlatHBM:
		// P1: HBM's chip latency is DRAM's plus a small constant.
		return dram + m.HBMExtraNS
	case Cache:
		// Every access first probes the HBM cache (an extra mesh leg plus
		// tag check); direct-mapped conflicts ramp in with footprint, and
		// capacity misses past HBM pay the far-channel trip to DRAM (P3).
		lat := dram + m.HBMExtraNS + m.CacheTagNS
		lat += m.CacheConflictNS * sat(arrayBytes, m.CacheConflictAt)
		if miss := sat(arrayBytes, m.HBMBytes); miss > 0 {
			lat += miss * m.CacheMissNS
		}
		return lat
	default:
		return dram
	}
}

// walkOverheadNS is the address-translation overhead for a working set of
// the given size: each TLB tier charges its penalty on the uncovered
// fraction.
func (m Machine) walkOverheadNS(arrayBytes uint64) float64 {
	o := 0.0
	for _, t := range m.TLB {
		o += t.PenaltyNS * sat(arrayBytes, t.CoverBytes)
	}
	return o
}

// ChaseSimulate runs a Monte Carlo pointer chase: ops accesses, each
// landing in a hierarchy tier with the residency probabilities of a
// uniformly random cycle, paying that tier's cost. It converges to
// ChaseLatencyNS and exists to mirror the measurement procedure (the paper
// measures 2^27 chases and divides).
func (m Machine) ChaseSimulate(arrayBytes uint64, mode Mode, ops int, seed int64) (float64, error) {
	if _, err := m.ChaseLatencyNS(arrayBytes, mode); err != nil {
		return 0, err
	}
	if ops <= 0 {
		return 0, fmt.Errorf("knl: ops must be positive, got %d", ops)
	}
	fL1 := frac(arrayBytes, 0, m.L1Bytes)
	fL2 := frac(arrayBytes, m.L1Bytes, m.L2Bytes)
	fSL2 := frac(arrayBytes, m.L2Bytes, m.SharedL2Bytes)
	memLat := m.memoryLatencyNS(arrayBytes, mode)

	rng := rand.New(rand.NewSource(seed))
	total := 0.0
	for i := 0; i < ops; i++ {
		u := rng.Float64()
		switch {
		case u < fL1:
			total += m.L1NS
		case u < fL1+fL2:
			total += m.L2NS
		case u < fL1+fL2+fSL2:
			total += m.SharedL2NS
		default:
			total += memLat
		}
	}
	return total / float64(ops), nil
}
