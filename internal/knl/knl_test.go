package knl

import (
	"math"
	"testing"
)

const (
	kibT = uint64(1) << 10
	mibT = uint64(1) << 20
	gibT = uint64(1) << 30
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	m := Default()
	m.Threads = 0
	if err := m.Validate(); err == nil {
		t.Error("zero threads accepted")
	}
	m = Default()
	m.L2Bytes = m.L1Bytes / 2
	if err := m.Validate(); err == nil {
		t.Error("shrinking capacities accepted")
	}
	m = Default()
	m.DRAMBandwidth = 0
	if err := m.Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestChaseLatencyMonotoneInSize(t *testing.T) {
	m := Default()
	for _, mode := range []Mode{FlatDRAM, Cache} {
		prev := 0.0
		for b := 1 * kibT; b <= 64*gibT; b *= 4 {
			lat, err := m.ChaseLatencyNS(b, mode)
			if err != nil {
				t.Fatalf("%s at %d: %v", mode, b, err)
			}
			if lat < prev {
				t.Fatalf("%s latency decreased at %d bytes: %g < %g", mode, b, lat, prev)
			}
			prev = lat
		}
	}
}

func TestChaseLatencySmallArraysFast(t *testing.T) {
	m := Default()
	lat, err := m.ChaseLatencyNS(1*kibT, FlatDRAM)
	if err != nil {
		t.Fatal(err)
	}
	if lat > m.L1NS*1.5 {
		t.Fatalf("1KiB array should live in L1: %gns", lat)
	}
}

func TestChaseLatencyHBMGap(t *testing.T) {
	// P1: flat HBM tracks flat DRAM plus a small constant for
	// memory-resident arrays.
	m := Default()
	for _, b := range []uint64{64 * mibT, 1 * gibT, 8 * gibT} {
		d, err := m.ChaseLatencyNS(b, FlatDRAM)
		if err != nil {
			t.Fatal(err)
		}
		h, err := m.ChaseLatencyNS(b, FlatHBM)
		if err != nil {
			t.Fatal(err)
		}
		gap := h - d
		if gap <= 0 || gap > m.HBMExtraNS {
			t.Fatalf("HBM-DRAM gap at %d: %gns (want in (0, %g])", b, gap, m.HBMExtraNS)
		}
	}
}

func TestChaseHBMRefusesOversize(t *testing.T) {
	m := Default()
	if _, err := m.ChaseLatencyNS(32*gibT, FlatHBM); err == nil {
		t.Fatal("flat HBM must refuse arrays beyond its capacity")
	}
	if _, err := m.GLUPSBandwidthMiBs(32*gibT, 272, FlatHBM); err == nil {
		t.Fatal("flat HBM bandwidth must refuse arrays beyond its capacity")
	}
}

func TestChaseErrors(t *testing.T) {
	m := Default()
	if _, err := m.ChaseLatencyNS(0, FlatDRAM); err == nil {
		t.Error("zero array size accepted")
	}
	bad := Default()
	bad.Threads = 0
	if _, err := bad.ChaseLatencyNS(1*mibT, FlatDRAM); err == nil {
		t.Error("invalid machine accepted")
	}
}

func TestCacheModeDivergesPastHBM(t *testing.T) {
	m := Default()
	within, err := m.ChaseLatencyNS(8*gibT, Cache)
	if err != nil {
		t.Fatal(err)
	}
	beyond, err := m.ChaseLatencyNS(64*gibT, Cache)
	if err != nil {
		t.Fatal(err)
	}
	dramBeyond, err := m.ChaseLatencyNS(64*gibT, FlatDRAM)
	if err != nil {
		t.Fatal(err)
	}
	if beyond <= within {
		t.Fatal("cache latency must grow past HBM capacity")
	}
	if beyond <= dramBeyond {
		t.Fatal("cache mode past HBM must cost more than flat DRAM (double lookup)")
	}
}

func TestGLUPSBandwidthShape(t *testing.T) {
	m := Default()
	d, err := m.GLUPSBandwidthMiBs(8*gibT, m.Threads, FlatDRAM)
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.GLUPSBandwidthMiBs(8*gibT, m.Threads, FlatHBM)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := h / d; ratio < 4 || ratio > 6 {
		t.Fatalf("HBM/DRAM bandwidth ratio %g outside the paper's 4.3-4.8 band", ratio)
	}
	cIn, err := m.GLUPSBandwidthMiBs(8*gibT, m.Threads, Cache)
	if err != nil {
		t.Fatal(err)
	}
	cOut, err := m.GLUPSBandwidthMiBs(32*gibT, m.Threads, Cache)
	if err != nil {
		t.Fatal(err)
	}
	if cIn != h {
		t.Fatalf("cache bandwidth within HBM should equal HBM's: %g vs %g", cIn, h)
	}
	if !(cOut < cIn && cOut > d) {
		t.Fatalf("cache bandwidth past HBM must sit between DRAM and HBM: %g (in %g, dram %g)", cOut, cIn, d)
	}
}

func TestGLUPSThreadScaling(t *testing.T) {
	m := Default()
	half, err := m.GLUPSBandwidthMiBs(1*gibT, m.Threads/2, FlatDRAM)
	if err != nil {
		t.Fatal(err)
	}
	full, err := m.GLUPSBandwidthMiBs(1*gibT, m.Threads, FlatDRAM)
	if err != nil {
		t.Fatal(err)
	}
	over, err := m.GLUPSBandwidthMiBs(1*gibT, m.Threads*2, FlatDRAM)
	if err != nil {
		t.Fatal(err)
	}
	if half >= full {
		t.Fatal("half the threads should not reach full bandwidth")
	}
	if over != full {
		t.Fatal("extra threads cannot exceed channel bandwidth")
	}
}

func TestGLUPSErrors(t *testing.T) {
	m := Default()
	if _, err := m.GLUPSBandwidthMiBs(0, 1, FlatDRAM); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := m.GLUPSBandwidthMiBs(1*mibT, 0, FlatDRAM); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := m.GLUPSBandwidthMiBs(1*mibT, 1, "bogus"); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestChaseSimulateConvergesToAnalytic(t *testing.T) {
	m := Default()
	for _, mode := range []Mode{FlatDRAM, FlatHBM, Cache} {
		want, err := m.ChaseLatencyNS(1*gibT, mode)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.ChaseSimulate(1*gibT, mode, 200000, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want)/want > 0.02 {
			t.Fatalf("%s: Monte Carlo %g vs analytic %g", mode, got, want)
		}
	}
}

func TestChaseSimulateErrors(t *testing.T) {
	m := Default()
	if _, err := m.ChaseSimulate(1*gibT, FlatDRAM, 0, 1); err == nil {
		t.Error("zero ops accepted")
	}
	if _, err := m.ChaseSimulate(32*gibT, FlatHBM, 10, 1); err == nil {
		t.Error("oversize flat-HBM simulate accepted")
	}
}

func TestPropertiesAllHold(t *testing.T) {
	props, err := Default().CheckProperties()
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != 4 {
		t.Fatalf("want 4 properties, got %d", len(props))
	}
	for _, p := range props {
		if !p.Holds {
			t.Errorf("P%d does not hold: %s (%s)", p.ID, p.Description, p.Detail)
		}
		if p.Detail == "" {
			t.Errorf("P%d detail empty", p.ID)
		}
	}
}

func TestPropertiesDetectMiscalibration(t *testing.T) {
	// A machine whose HBM bandwidth equals DRAM's must fail P2.
	m := Default()
	m.HBMBandwidth = m.DRAMBandwidth
	props, err := m.CheckProperties()
	if err != nil {
		t.Fatal(err)
	}
	if props[1].Holds {
		t.Fatal("P2 should fail when HBM bandwidth equals DRAM's")
	}
}

func TestModesList(t *testing.T) {
	if len(Modes()) != 3 {
		t.Fatalf("modes: %v", Modes())
	}
}
