package knl

import "fmt"

// GLUPSBandwidthMiBs returns the aggregate bandwidth (MiB/s) the GLUPS
// microbenchmark achieves on an array of the given size in the given mode
// with the given thread count. GLUPS reads, xors, and writes random
// 1024-byte blocks with enough threads to saturate the channels, so the
// result is the channel-limited streaming bandwidth:
//
//   - flat DRAM: the DDR channels' bandwidth (flat in array size);
//   - flat HBM: the on-package channels' bandwidth, ~4.3-4.8x DRAM (P2);
//   - cache mode: HBM bandwidth while the array fits; past HBM capacity
//     the miss fraction is refilled over the far channels, and the
//     harmonic combination collapses toward (but stays above) DRAM (P4).
func (m Machine) GLUPSBandwidthMiBs(arrayBytes uint64, threads int, mode Mode) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if arrayBytes == 0 {
		return 0, fmt.Errorf("knl: array size must be positive")
	}
	if threads <= 0 {
		return 0, fmt.Errorf("knl: thread count must be positive, got %d", threads)
	}
	if mode == FlatHBM && arrayBytes > m.HBMBytes {
		return 0, fmt.Errorf("knl: cannot allocate %d bytes in %d-byte HBM (flat mode)", arrayBytes, m.HBMBytes)
	}

	// Fewer threads than the channel-saturation point scale linearly.
	scale := float64(threads) / float64(m.Threads)
	if scale > 1 {
		scale = 1
	}
	switch mode {
	case FlatDRAM:
		return scale * m.DRAMBandwidth, nil
	case FlatHBM:
		return scale * m.HBMBandwidth, nil
	case Cache:
		miss := sat(arrayBytes, m.HBMBytes)
		if miss == 0 {
			return scale * m.HBMBandwidth, nil
		}
		// Harmonic mix: hit bytes stream at HBM speed, miss bytes are
		// limited by the far channels to DRAM.
		eff := 1 / ((1-miss)/m.HBMBandwidth + miss/m.FarBandwidth)
		return scale * eff, nil
	default:
		return 0, fmt.Errorf("knl: unknown mode %q", mode)
	}
}
