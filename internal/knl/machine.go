// Package knl models the memory hierarchy of Intel's Xeon Phi Knights
// Landing — the hardware the paper validates the HBM+DRAM model against in
// §5. We have no KNL, so this package is the substitution (see DESIGN.md
// §2): a parameterised analytic machine whose per-level latencies,
// page-walk overheads, and bandwidths are calibrated so that the paper's
// two microbenchmarks (pointer chasing and GLUPS), run against the model,
// reproduce the shapes of Table 2 and Figure 6 and exhibit the four
// Properties of §5:
//
//	P1: flat HBM and flat DRAM have similar access latency (~24 ns apart);
//	P2: HBM has ~4.3-4.8x the bandwidth of DRAM;
//	P3: a cache-mode HBM miss costs about twice an HBM hit;
//	P4: cache-mode bandwidth collapses (but stays above DRAM) once the
//	    working set exceeds HBM.
package knl

import "fmt"

// Mode selects how the machine's memory is addressed, mirroring KNL's boot
// modes.
type Mode string

// Memory modes. FlatDRAM binds allocations to DDR4, FlatHBM binds them to
// MCDRAM (possible only while they fit), and Cache uses MCDRAM as a
// direct-mapped last-level cache in front of DDR4.
const (
	FlatDRAM Mode = "flat-dram"
	FlatHBM  Mode = "flat-hbm"
	Cache    Mode = "cache"
)

// Modes lists the three memory modes.
func Modes() []Mode { return []Mode{FlatDRAM, FlatHBM, Cache} }

// Machine holds the calibrated hardware parameters.
type Machine struct {
	// Threads is the hardware thread count (KNL: 68 cores x 4 = 272).
	Threads int

	// Capacities in bytes of each hierarchy level.
	L1Bytes       uint64
	L2Bytes       uint64
	SharedL2Bytes uint64 // aggregate of the other tiles' L2, via the mesh
	HBMBytes      uint64

	// Latencies in nanoseconds to serve a load from each level.
	L1NS       float64
	L2NS       float64
	SharedL2NS float64 // includes one mesh traversal
	DRAMBaseNS float64 // DDR4 latency for small working sets
	HBMExtraNS float64 // flat HBM is this much slower than flat DRAM (P1)

	// Page-walk overhead: each TLB tier covers CoverBytes; accesses beyond
	// the covered fraction pay PenaltyNS. This reproduces the slow climb of
	// latency with array size in Table 2a.
	TLB []TLBTier

	// Cache-mode overheads.
	CacheTagNS      float64 // constant tag-check cost of cache mode
	CacheConflictNS float64 // direct-mapped conflict overhead, ramping in
	CacheConflictAt uint64  // array size where conflicts start to bite
	CacheMissNS     float64 // extra cost of missing HBM and going to DRAM

	// Bandwidths in MiB/s with all threads driving memory.
	DRAMBandwidth float64
	HBMBandwidth  float64
	FarBandwidth  float64 // HBM<->DRAM refill bandwidth in cache mode
}

// Default returns the machine calibrated against the paper's measurements
// (Table 2; 272 threads, 16 GiB MCDRAM, 6 DDR channels, 8 HBM connections).
func Default() Machine {
	const (
		kib = uint64(1) << 10
		mib = uint64(1) << 20
		gib = uint64(1) << 30
	)
	return Machine{
		Threads: 272,
		L1Bytes: 32 * kib,
		L2Bytes: 1 * mib,
		// Effective cross-tile L2 reach: KNL's distributed tag directory
		// gives only a small slice of remote L2 to any one thread's
		// private data, so the shared tier is a few MiB, not 34.
		SharedL2Bytes: 4 * mib,
		HBMBytes:      16 * gib,

		L1NS:       2,
		L2NS:       12,
		SharedL2NS: 150, // cross-mesh L2 access, the ~200ns baseline tier
		DRAMBaseNS: 180,
		HBMExtraNS: 24,

		TLB: []TLBTier{
			{CoverBytes: 32 * mib, PenaltyNS: 45},
			{CoverBytes: 256 * mib, PenaltyNS: 95},
			{CoverBytes: 16 * gib, PenaltyNS: 55},
		},

		CacheTagNS:      5,
		CacheConflictNS: 30,
		CacheConflictAt: 256 * mib,
		CacheMissNS:     90,

		DRAMBandwidth: 67_500,
		HBMBandwidth:  315_000,
		FarBandwidth:  110_000,
	}
}

// TLBTier is one level of address-translation coverage.
type TLBTier struct {
	// CoverBytes is the working-set size this tier covers without penalty.
	CoverBytes uint64
	// PenaltyNS is paid by the fraction of accesses falling outside the
	// covered bytes.
	PenaltyNS float64
}

// Validate reports a parameterisation error, if any.
func (m Machine) Validate() error {
	if m.Threads <= 0 {
		return fmt.Errorf("knl: thread count must be positive, got %d", m.Threads)
	}
	if m.L1Bytes == 0 || m.L2Bytes < m.L1Bytes || m.SharedL2Bytes < m.L2Bytes || m.HBMBytes < m.SharedL2Bytes {
		return fmt.Errorf("knl: capacities must be increasing (L1 %d, L2 %d, shared L2 %d, HBM %d)",
			m.L1Bytes, m.L2Bytes, m.SharedL2Bytes, m.HBMBytes)
	}
	if m.DRAMBandwidth <= 0 || m.HBMBandwidth <= 0 || m.FarBandwidth <= 0 {
		return fmt.Errorf("knl: bandwidths must be positive")
	}
	return nil
}

// sat returns the fraction of a working set of size s that lies beyond
// cover bytes: max(0, 1 - cover/s).
func sat(s, cover uint64) float64 {
	if s <= cover || s == 0 {
		return 0
	}
	return 1 - float64(cover)/float64(s)
}
