package knl

import (
	"math"
	"testing"
)

// calibration_test.go pins the machine model against the paper's actual
// measurements (Table 2). The model need not match exactly — it is a
// smooth analytic fit — but every point must land within a stated
// tolerance, so any re-parameterisation that drifts away from the
// published data fails loudly.

// paperTable2a is the paper's pointer-chasing latency table (ns).
// -1 marks "not measurable" (flat HBM beyond its capacity).
var paperTable2a = []struct {
	bytes            uint64
	dram, hbm, cache float64
}{
	{16 * mibT, 168.9, 187.6, 190.6},
	{32 * mibT, 171.9, 194.1, 196.1},
	{64 * mibT, 174.0, 196.5, 199.8},
	{128 * mibT, 198.8, 222.3, 228.1},
	{256 * mibT, 235.6, 259.8, 271.6},
	{512 * mibT, 269.7, 293.8, 311.9},
	{1 * gibT, 291.4, 315.5, 337.5},
	{2 * gibT, 304.4, 328.6, 352.8},
	{4 * gibT, 312.7, 337.2, 365.7},
	{8 * gibT, 318.3, 343.1, 378.3},
	{16 * gibT, 324.4, -1, 396.1},
	{32 * gibT, 338.0, -1, 430.5},
	{64 * gibT, 364.7, -1, 489.6},
}

func TestCalibrationAgainstTable2a(t *testing.T) {
	const tol = 0.15 // 15% per point: an analytic fit, not a lookup table
	m := Default()
	for _, row := range paperTable2a {
		check := func(mode Mode, want float64) {
			if want < 0 {
				return
			}
			got, err := m.ChaseLatencyNS(row.bytes, mode)
			if err != nil {
				t.Fatalf("%s at %d: %v", mode, row.bytes, err)
			}
			if math.Abs(got-want)/want > tol {
				t.Errorf("%s at %d bytes: model %.1fns vs paper %.1fns (>%.0f%% off)",
					mode, row.bytes, got, want, 100*tol)
			}
		}
		check(FlatDRAM, row.dram)
		check(FlatHBM, row.hbm)
		check(Cache, row.cache)
	}
}

// paperTable2b is the paper's GLUPS bandwidth table (MiB/s, 272 threads).
var paperTable2b = []struct {
	bytes            uint64
	dram, hbm, cache float64
}{
	{512 * mibT, 70627, 299593, 308103},
	{1 * gibT, 67874, 262208, 302974},
	{2 * gibT, 66459, 315227, 313730},
	{4 * gibT, 67025, 323989, 319459},
	{8 * gibT, 67118, 323318, 309988},
	{16 * gibT, 67534, -1, 272787},
	{32 * gibT, 67931, -1, 148989},
	{64 * gibT, 67720, -1, 146600},
}

func TestCalibrationAgainstTable2b(t *testing.T) {
	// Bandwidth tolerance is looser: the paper's own numbers wobble ±20%
	// between adjacent sizes (262GB/s at 1GiB vs 315 at 2GiB), and the
	// model is deliberately smooth.
	const tol = 0.25
	m := Default()
	for _, row := range paperTable2b {
		check := func(mode Mode, want float64) {
			if want < 0 {
				return
			}
			got, err := m.GLUPSBandwidthMiBs(row.bytes, m.Threads, mode)
			if err != nil {
				t.Fatalf("%s at %d: %v", mode, row.bytes, err)
			}
			if math.Abs(got-want)/want > tol {
				t.Errorf("%s at %d bytes: model %.0f vs paper %.0f MiB/s (>%.0f%% off)",
					mode, row.bytes, got, want, 100*tol)
			}
		}
		check(FlatDRAM, row.dram)
		check(FlatHBM, row.hbm)
		check(Cache, row.cache)
	}
}

// TestCalibrationHeadlineDeltas checks the two §5 headline numbers: the
// ~24ns HBM-DRAM latency gap and the 4.3-4.8x bandwidth ratio.
func TestCalibrationHeadlineDeltas(t *testing.T) {
	m := Default()
	d, err := m.ChaseLatencyNS(1*gibT, FlatDRAM)
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.ChaseLatencyNS(1*gibT, FlatHBM)
	if err != nil {
		t.Fatal(err)
	}
	if gap := h - d; gap < 15 || gap > 30 {
		t.Errorf("HBM-DRAM latency gap %.1fns outside the paper's ~24ns band", gap)
	}
	bd, err := m.GLUPSBandwidthMiBs(4*gibT, m.Threads, FlatDRAM)
	if err != nil {
		t.Fatal(err)
	}
	bh, err := m.GLUPSBandwidthMiBs(4*gibT, m.Threads, FlatHBM)
	if err != nil {
		t.Fatal(err)
	}
	if r := bh / bd; r < 4.3 || r > 4.8 {
		t.Errorf("bandwidth ratio %.2f outside the paper's 4.3-4.8x band", r)
	}
}
