module hbmsim

go 1.22
