// Quickstart: simulate one workload under the three arbitration policies
// the paper compares — FIFO (today's hardware), static Priority (the
// theory's O(1)-competitive scheme), and Dynamic Priority (the paper's
// recommendation) — and print makespan, response time, and fairness.
package main

import (
	"fmt"
	"log"

	"hbmsim"
)

func main() {
	// A 32-core workload: each core runs an instrumented introsort (the
	// algorithm inside GNU std::sort) of 4000 integers; every array
	// dereference becomes a page reference at 64-byte granularity.
	const cores = 32
	wl, err := hbmsim.SortWorkload(cores, hbmsim.SortConfig{N: 4000, PageBytes: 64}, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s — %d cores, %d refs, %d unique pages\n\n",
		wl.Name, wl.Cores(), wl.TotalRefs(), wl.UniquePages())

	// HBM with k slots and one far channel to DRAM: scarce enough that
	// the channel is contended.
	const k, q = 500, 1

	configs := map[string]hbmsim.Config{
		"FIFO": {HBMSlots: k, Channels: q, Arbiter: hbmsim.ArbiterFIFO},
		"Priority": {HBMSlots: k, Channels: q, Arbiter: hbmsim.ArbiterPriority,
			Permuter: hbmsim.PermuterStatic},
		"Dynamic Priority": hbmsim.DynamicPriorityConfig(k, q),
	}

	bounds := hbmsim.LowerBounds(wl, k, q)
	fmt.Printf("%-18s %10s %8s %12s %14s\n", "policy", "makespan", "hitrate", "resp. mean", "inconsistency")
	for _, name := range []string{"FIFO", "Priority", "Dynamic Priority"} {
		cfg := configs[name]
		cfg.Seed = 7
		res, err := hbmsim.Run(cfg, wl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %10d %8.3f %12.2f %14.1f   (%.2fx lower bound)\n",
			name, res.Makespan, res.HitRate(), res.ResponseMean, res.Inconsistency,
			hbmsim.CompetitiveRatio(res.Makespan, bounds))
	}
	fmt.Println("\nDynamic Priority sidesteps both FIFO's worst case (Figure 3) and static")
	fmt.Println("Priority's unfairness: makespan near the best of the two, inconsistency far")
	fmt.Println("below static Priority's.")
}
