// SpGEMM study (Figure 2a shape): sweep the thread count for a sparse
// matrix-matrix multiplication workload and watch the FIFO/Priority
// crossover — FIFO wins while HBM is plentiful, Priority wins (by a lot)
// once threads contend for the far channel.
package main

import (
	"fmt"
	"log"

	"hbmsim"
)

func main() {
	const (
		dim     = 96   // matrix dimension (the paper uses 600)
		density = 0.10 // ~10% of elements exist, as in the paper
		k       = 1000 // HBM slots
		q       = 1    // far channels
	)
	maxThreads := 96
	wl, err := hbmsim.SpGEMMWorkload(maxThreads, hbmsim.SpGEMMConfig{
		N: dim, Density: density, PageBytes: 64,
	}, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s — %d refs/core, %d pages/core\n\n",
		wl.Name, wl.TotalRefs()/uint64(wl.Cores()), wl.UniquePages()/wl.Cores())

	fmt.Println("threads |  FIFO/Priority makespan ratio  (>1 favours Priority)")
	for _, p := range []int{4, 8, 16, 32, 64, 96} {
		sub := wl.Subset(p)
		fifo, err := hbmsim.Run(hbmsim.Config{
			HBMSlots: k, Channels: q, Arbiter: hbmsim.ArbiterFIFO, Seed: 1,
		}, sub)
		if err != nil {
			log.Fatal(err)
		}
		prio, err := hbmsim.Run(hbmsim.Config{
			HBMSlots: k, Channels: q, Arbiter: hbmsim.ArbiterPriority, Seed: 1,
		}, sub)
		if err != nil {
			log.Fatal(err)
		}
		ratio := float64(fifo.Makespan) / float64(prio.Makespan)
		bar := ""
		for i := 0.0; i < ratio*10; i++ {
			bar += "#"
		}
		fmt.Printf("%7d | %6.3f %s\n", p, ratio, bar)
	}
	fmt.Println("\nSpGEMM is the paper's most promising case: it scales past 100 cores in the")
	fmt.Println("literature, and that is exactly where Priority-style arbitration pays off.")
}
