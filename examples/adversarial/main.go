// Adversarial: reproduce the paper's Figure 3 blow-up live — on a cyclic
// trace (1..256 repeated 100x) with HBM sized to a quarter of the unique
// pages, FIFO never hits and its makespan grows linearly in the thread
// count, while Priority's stays flat. "The HBM becomes too stretched, like
// butter scraped over too much bread."
package main

import (
	"fmt"
	"log"

	"hbmsim"
)

func main() {
	adv := hbmsim.AdversarialConfig{Pages: 256, Reps: 100}
	fmt.Println("threads |  FIFO makespan  FIFO hitrate | Priority makespan  Priority hitrate | ratio")
	for _, p := range []int{8, 16, 32, 64, 128} {
		wl, err := hbmsim.AdversarialWorkload(p, adv)
		if err != nil {
			log.Fatal(err)
		}
		k := hbmsim.AdversarialHBMSlots(p, adv) // 1/4 of all unique pages

		fifo, err := hbmsim.Run(hbmsim.Config{
			HBMSlots: k, Channels: 1, Arbiter: hbmsim.ArbiterFIFO, Seed: 1,
		}, wl)
		if err != nil {
			log.Fatal(err)
		}
		prio, err := hbmsim.Run(hbmsim.Config{
			HBMSlots: k, Channels: 1, Arbiter: hbmsim.ArbiterPriority, Seed: 1,
		}, wl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7d | %14d %13.3f | %17d %17.3f | %5.1fx\n",
			p, fifo.Makespan, fifo.HitRate(), prio.Makespan, prio.HitRate(),
			float64(fifo.Makespan)/float64(prio.Makespan))
	}
	fmt.Println("\nFIFO spreads HBM thinly over every thread (zero reuse); Priority lets the")
	fmt.Println("top threads keep their working sets resident and finishes them in waves.")
}
