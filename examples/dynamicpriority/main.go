// Dynamic Priority tuning (Figure 5 / Table 1 shape): sweep the remap
// interval T and chart the fairness/performance trade-off. Small T behaves
// like random arbitration (fair, slower); huge T behaves like static
// Priority (fast, starves threads). The paper recommends T >= 10k.
package main

import (
	"fmt"
	"log"

	"hbmsim"
)

func main() {
	const (
		p = 64
		k = 1000
		q = 1
	)
	wl, err := hbmsim.SpGEMMWorkload(p, hbmsim.SpGEMMConfig{N: 96, PageBytes: 64}, 11)
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string, cfg hbmsim.Config) {
		cfg.HBMSlots, cfg.Channels, cfg.Seed = k, q, 2
		res, err := hbmsim.Run(cfg, wl)
		if err != nil {
			log.Fatal(err)
		}
		// Worst per-core starvation: the largest single response time.
		fmt.Printf("%-22s %10d %12.2f %14.1f %12.0f\n",
			name, res.Makespan, res.ResponseMean, res.Inconsistency, res.ResponseMax)
	}

	fmt.Printf("%-22s %10s %12s %14s %12s\n", "scheme", "makespan", "resp. mean", "inconsistency", "worst wait")
	run("FIFO", hbmsim.Config{Arbiter: hbmsim.ArbiterFIFO})
	run("Random", hbmsim.Config{Arbiter: hbmsim.ArbiterRandom})
	for _, mult := range []int{1, 5, 10, 100} {
		run(fmt.Sprintf("Dynamic T=%dk", mult), hbmsim.Config{
			Arbiter:     hbmsim.ArbiterPriority,
			Permuter:    hbmsim.PermuterDynamic,
			RemapPeriod: hbmsim.Tick(mult * k),
		})
	}
	for _, mult := range []int{1, 10} {
		run(fmt.Sprintf("Cycle T=%dk", mult), hbmsim.Config{
			Arbiter:     hbmsim.ArbiterPriority,
			Permuter:    hbmsim.PermuterCycle,
			RemapPeriod: hbmsim.Tick(mult * k),
		})
	}
	run("Priority (static)", hbmsim.Config{Arbiter: hbmsim.ArbiterPriority})

	fmt.Println("\nPick T in the plateau: makespan as good as static Priority, inconsistency")
	fmt.Println("an order of magnitude lower — 'unambiguously better than both FIFO and Priority'.")
}
