// Sorting study (Figure 2b shape): compare the four instrumented sorting
// algorithms' page-access behaviour under the HBM model, then sweep thread
// counts for the introsort ("GNU sort") workload.
package main

import (
	"fmt"
	"log"

	"hbmsim"
)

func main() {
	const (
		n = 4000 // integers per core (the paper sorts 500000)
		k = 500
		q = 1
		p = 48
	)

	// Part 1: how do the algorithms differ as reference streams?
	fmt.Println("algorithm | refs/core | pages/core | Priority makespan | hitrate")
	for _, algo := range []hbmsim.SortAlgo{
		hbmsim.SortIntro, hbmsim.SortMerge, hbmsim.SortQuick, hbmsim.SortHeap,
	} {
		wl, err := hbmsim.SortWorkload(p, hbmsim.SortConfig{N: n, Algo: algo, PageBytes: 64}, 5)
		if err != nil {
			log.Fatal(err)
		}
		res, err := hbmsim.Run(hbmsim.Config{
			HBMSlots: k, Channels: q, Arbiter: hbmsim.ArbiterPriority, Seed: 1,
		}, wl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s | %9d | %10d | %17d | %.3f\n",
			algo, wl.TotalRefs()/uint64(p), wl.UniquePages()/p, res.Makespan, res.HitRate())
	}

	// Part 2: the FIFO/Priority crossover on introsort.
	wl, err := hbmsim.SortWorkload(96, hbmsim.SortConfig{N: n, PageBytes: 64}, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthreads | FIFO/Priority makespan ratio (introsort)")
	for _, pp := range []int{8, 16, 32, 64, 96} {
		sub := wl.Subset(pp)
		fifo, err := hbmsim.Run(hbmsim.Config{HBMSlots: k, Channels: q, Arbiter: hbmsim.ArbiterFIFO, Seed: 1}, sub)
		if err != nil {
			log.Fatal(err)
		}
		prio, err := hbmsim.Run(hbmsim.Config{HBMSlots: k, Channels: q, Arbiter: hbmsim.ArbiterPriority, Seed: 1}, sub)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7d | %.3f\n", pp, float64(fifo.Makespan)/float64(prio.Makespan))
	}
	fmt.Println("\nSorting is hit-heavy (every page is reused thousands of times), so the")
	fmt.Println("arbitration effects are milder than SpGEMM's — exactly as in the paper.")
}
