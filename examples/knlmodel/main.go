// KNL model: the §5 validation story without the hardware. The paper
// measured Xeon Phi Knights Landing to show real HBM machines behave like
// the HBM+DRAM model; this example runs the same two microbenchmarks —
// pointer chasing (latency) and GLUPS (bandwidth) — against the calibrated
// machine model and checks the four properties.
package main

import (
	"fmt"
	"log"

	"hbmsim"
)

func main() {
	m := hbmsim.DefaultKNL()
	const gib = uint64(1) << 30

	fmt.Println("pointer chasing (ns/op):")
	fmt.Printf("%10s %12s %12s %12s\n", "array", "flat DRAM", "flat HBM", "cache mode")
	for _, b := range []uint64{1 * gib, 8 * gib, 32 * gib, 64 * gib} {
		d, err := m.ChaseLatencyNS(b, hbmsim.KNLFlatDRAM)
		if err != nil {
			log.Fatal(err)
		}
		c, err := m.ChaseLatencyNS(b, hbmsim.KNLCache)
		if err != nil {
			log.Fatal(err)
		}
		hbmCell := "      -"
		if b <= 8*gib {
			h, err := m.ChaseLatencyNS(b, hbmsim.KNLFlatHBM)
			if err != nil {
				log.Fatal(err)
			}
			hbmCell = fmt.Sprintf("%7.1f", h)
		}
		fmt.Printf("%8dGiB %12.1f %12s %12.1f\n", b/gib, d, hbmCell, c)
	}

	fmt.Println("\nGLUPS bandwidth (MiB/s, 272 threads):")
	for _, b := range []uint64{8 * gib, 32 * gib} {
		d, err := m.GLUPSBandwidthMiBs(b, m.Threads, hbmsim.KNLFlatDRAM)
		if err != nil {
			log.Fatal(err)
		}
		c, err := m.GLUPSBandwidthMiBs(b, m.Threads, hbmsim.KNLCache)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2dGiB: DRAM %8.0f   cache-mode %8.0f\n", b/gib, d, c)
	}

	fmt.Println("\nmodel properties (§5):")
	props, err := m.CheckProperties()
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range props {
		fmt.Printf("  P%d %-68s %v\n", p.ID, p.Description, p.Holds)
	}
}
