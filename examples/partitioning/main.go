// Partitioning: why far-channel arbitration is really a partitioning
// problem. The paper restates arbitration as "how to partition the pages
// of the HBM among all processes" and observes that FIFO spreads HBM
// "evenly and thinly ... like butter scraped over too much bread". This
// example computes each core's LRU miss-ratio curve (Mattson stack
// distances), compares the even split FIFO approximates with a
// clairvoyant utility-based partition, and then shows the simulated
// policies landing between those analytic endpoints.
package main

import (
	"fmt"
	"log"

	"hbmsim"
)

func main() {
	const (
		p = 16
		k = 250 // scarce: well below the combined working sets
		q = 1
	)
	// A deliberately lopsided workload: half the cores run a reuse-heavy
	// kernel (sorting), half stream with little reuse (SpGEMM output).
	sortW, err := hbmsim.SortWorkload(p/2, hbmsim.SortConfig{N: 3000, PageBytes: 64}, 1)
	if err != nil {
		log.Fatal(err)
	}
	spW, err := hbmsim.SpGEMMWorkload(p/2, hbmsim.SpGEMMConfig{N: 48, PageBytes: 64}, 2)
	if err != nil {
		log.Fatal(err)
	}
	traces := append(append([]hbmsim.Trace{}, sortW.Traces...), spW.Traces...)
	wl := hbmsim.NewWorkload("mixed sort+spgemm", traces)

	// Analytic endpoints from the miss-ratio curves.
	curves := make([]hbmsim.ReuseCurve, wl.Cores())
	for i, tr := range wl.Traces {
		curves[i] = hbmsim.ReuseCurveOf(tr)
	}
	alloc, optMisses, err := hbmsim.OptimalPartition(curves, k)
	if err != nil {
		log.Fatal(err)
	}
	evenMisses := hbmsim.EvenPartition(curves, k)
	fmt.Printf("static partitioning of %d slots over %d cores:\n", k, wl.Cores())
	fmt.Printf("  even split:        %d misses\n", evenMisses)
	fmt.Printf("  utility partition: %d misses  (alloc per core: %v)\n\n", optMisses, alloc)

	// The simulated policies.
	for _, c := range []struct {
		name string
		cfg  hbmsim.Config
	}{
		{"FIFO", hbmsim.Config{Arbiter: hbmsim.ArbiterFIFO}},
		{"Priority", hbmsim.Config{Arbiter: hbmsim.ArbiterPriority}},
		{"Dynamic Priority", hbmsim.DynamicPriorityConfig(k, q)},
	} {
		cfg := c.cfg
		cfg.HBMSlots, cfg.Channels, cfg.Seed = k, q, 3
		res, err := hbmsim.Run(cfg, wl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s makespan %8d   misses %7d   hitrate %.3f\n",
			c.name, res.Makespan, res.Misses, res.HitRate())
	}
	fmt.Println("\nPriority-style arbitration approximates the uneven clairvoyant partition;")
	fmt.Println("FIFO approximates the even split — and pays for it in misses and makespan.")
}
