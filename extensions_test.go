package hbmsim_test

import (
	"testing"

	"hbmsim"
)

// extensions_test.go covers the public API added beyond the paper's core
// experiments: direct-mapped HBM, the clairvoyant baseline, and the
// reuse-curve analysis.

func TestParseMapping(t *testing.T) {
	if m, err := hbmsim.ParseMapping("direct"); err != nil || m != hbmsim.MappingDirect {
		t.Errorf("ParseMapping(direct): %v %v", m, err)
	}
	if m, err := hbmsim.ParseMapping("associative"); err != nil || m != hbmsim.MappingAssociative {
		t.Errorf("ParseMapping(associative): %v %v", m, err)
	}
	if _, err := hbmsim.ParseMapping("nope"); err == nil {
		t.Error("bad mapping accepted")
	}
}

func TestDirectMappedThroughFacade(t *testing.T) {
	wl, err := hbmsim.AdversarialWorkload(4, hbmsim.AdversarialConfig{Pages: 16, Reps: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := hbmsim.Run(hbmsim.Config{
		HBMSlots: 128, Channels: 1, Mapping: hbmsim.MappingDirect, Seed: 5,
	}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRefs != 4*16*4 {
		t.Fatalf("refs: %d", res.TotalRefs)
	}
}

func TestBeladyThroughFacade(t *testing.T) {
	// Clairvoyant replacement must not lose to LRU on a looping workload
	// that LRU thrashes: same arbitration, same k.
	wl, err := hbmsim.AdversarialWorkload(2, hbmsim.AdversarialConfig{Pages: 24, Reps: 10})
	if err != nil {
		t.Fatal(err)
	}
	const k = 16
	lru, err := hbmsim.Run(hbmsim.Config{
		HBMSlots: k, Channels: 1, Arbiter: hbmsim.ArbiterPriority, Seed: 1,
	}, wl)
	if err != nil {
		t.Fatal(err)
	}
	bel, err := hbmsim.Run(hbmsim.Config{
		HBMSlots: k, Channels: 1, Arbiter: hbmsim.ArbiterPriority,
		Replacement: hbmsim.ReplaceBelady, Seed: 1,
	}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if bel.Misses > lru.Misses {
		t.Errorf("Belady missed more than LRU: %d vs %d", bel.Misses, lru.Misses)
	}
	if bel.Makespan > lru.Makespan {
		t.Errorf("Belady makespan above LRU's: %d vs %d", bel.Makespan, lru.Makespan)
	}
}

func TestReuseCurveFacade(t *testing.T) {
	tr := hbmsim.Trace{1, 2, 3, 1, 2, 3, 1, 2, 3}
	c := hbmsim.ReuseCurveOf(tr)
	if c.Misses(3) != 3 {
		t.Errorf("k=3 should only cold-miss: %d", c.Misses(3))
	}
	if c.Misses(2) != 9 {
		t.Errorf("k=2 should thrash the 3-page loop: %d", c.Misses(2))
	}
	curves := []hbmsim.ReuseCurve{c, hbmsim.ReuseCurveOf(hbmsim.Trace{7, 8, 7, 8})}
	alloc, total, err := hbmsim.OptimalPartition(curves, 5)
	if err != nil {
		t.Fatal(err)
	}
	if alloc[0] < 3 || alloc[1] < 2 {
		t.Errorf("partition should satisfy both loops: %v", alloc)
	}
	if total != 5 {
		t.Errorf("total misses: got %d, want 5 (cold only)", total)
	}
	if even := hbmsim.EvenPartition(curves, 4); even <= total {
		t.Errorf("even split of 4 should be worse: %d vs %d", even, total)
	}
}

func TestMaxServeGapExposed(t *testing.T) {
	wl := hbmsim.NewWorkload("w", []hbmsim.Trace{{0}, {1}})
	res, err := hbmsim.Run(hbmsim.Config{HBMSlots: 4, Channels: 1}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxServeGap == 0 {
		t.Error("MaxServeGap not populated")
	}
}

func TestBFSWorkloadFacade(t *testing.T) {
	wl, err := hbmsim.BFSWorkload(2, hbmsim.BFSConfig{Vertices: 64, Degree: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := wl.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := hbmsim.Run(hbmsim.Config{HBMSlots: 32, Channels: 1}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRefs != wl.TotalRefs() {
		t.Fatalf("refs: %d vs %d", res.TotalRefs, wl.TotalRefs())
	}
}

func TestMixedWorkloadFacade(t *testing.T) {
	wl, err := hbmsim.MixedWorkload([]hbmsim.MixedSpec{
		{Cores: 2, Name: "sort", Gen: func(seed int64) (hbmsim.Trace, error) {
			w, err := hbmsim.SortWorkload(1, hbmsim.SortConfig{N: 128, PageBytes: 64}, seed)
			if err != nil {
				return nil, err
			}
			return w.Traces[0], nil
		}},
		{Cores: 1, Name: "stream", Gen: func(seed int64) (hbmsim.Trace, error) {
			w, err := hbmsim.StreamWorkload(1, hbmsim.StreamConfig{N: 64, PageBytes: 64}, seed)
			if err != nil {
				return nil, err
			}
			return w.Traces[0], nil
		}},
	}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if wl.Cores() != 3 {
		t.Fatalf("cores: %d", wl.Cores())
	}
	if err := wl.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := hbmsim.Run(hbmsim.DynamicPriorityConfig(64, 1), wl); err != nil {
		t.Fatal(err)
	}
}
