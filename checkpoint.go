package hbmsim

import (
	"context"
	"io"

	"hbmsim/internal/core"
)

// Checkpoint & resume: a stepwise Sim can be snapshotted between Steps
// with Sim.Checkpoint and reconstructed later — in another process —
// with ResumeSim; the resumed run's Result and Observer event stream are
// bit-identical to an uninterrupted run. See DESIGN.md's "Checkpoint &
// resume" section for the on-disk format.

// ErrSnapshotMismatch reports a structurally valid snapshot taken under
// a different Config or workload than the one ResumeSim was given.
var ErrSnapshotMismatch = core.ErrSnapshotMismatch

// SnapshotFormatVersion is the checkpoint format version this build
// writes and reads.
const SnapshotFormatVersion = core.FormatVersion

// ResumeSim reconstructs a simulator from a snapshot written by
// Sim.Checkpoint. cfg and wl must be exactly the configuration and
// workload of the checkpointed run (ErrSnapshotMismatch otherwise);
// observers are not part of the snapshot, so re-attach them before
// stepping.
func ResumeSim(r io.Reader, cfg Config, wl *Workload) (*Sim, error) {
	return core.Resume(r, cfg, wl.Raw())
}

// ResumeSimContext is ResumeSim under any trace span carried by ctx: the
// snapshot load is timed as a "core.checkpoint.load" child span. With no
// span in ctx it is exactly ResumeSim. (Checkpoint's counterpart is the
// Sim.CheckpointContext method.)
func ResumeSimContext(ctx context.Context, r io.Reader, cfg Config, wl *Workload) (*Sim, error) {
	return core.ResumeContext(ctx, r, cfg, wl.Raw())
}

// ConfigFingerprint hashes a Config (after applying defaults); together
// with WorkloadFingerprint it keys snapshots and sweep-journal rows.
func ConfigFingerprint(cfg Config) uint64 { return core.ConfigHash(cfg) }

// WorkloadFingerprint hashes a workload's traces as stored — i.e. after
// NewWorkload's page-ID renumbering — so it keys on access structure
// (trace count, lengths, order, repeat pattern), not raw page-ID values.
func WorkloadFingerprint(wl *Workload) uint64 { return core.WorkloadHash(wl.Raw()) }
