package hbmsim_test

import (
	"testing"

	"hbmsim"
)

// paper_test.go asserts the paper's headline claims at reduced scale.
// These are the integration tests that would catch a regression breaking
// the reproduction itself (EXPERIMENTS.md records the full-scale numbers).

// run is a small helper with LRU defaults.
func run(t *testing.T, wl *hbmsim.Workload, k, q int, arb hbmsim.ArbiterKind,
	perm hbmsim.PermuterKind, remap hbmsim.Tick) *hbmsim.Result {
	t.Helper()
	res, err := hbmsim.Run(hbmsim.Config{
		HBMSlots: k, Channels: q,
		Arbiter: arb, Permuter: perm, RemapPeriod: remap,
		Seed: 1,
	}, wl)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestClaimFIFOCollapsesOnAdversarialTrace: §4 / Figure 3. On the cyclic
// trace with k = 1/4 of unique pages, FIFO misses every reference and its
// makespan scales linearly with p, while Priority's stays near-flat.
func TestClaimFIFOCollapsesOnAdversarialTrace(t *testing.T) {
	adv := hbmsim.AdversarialConfig{Pages: 64, Reps: 25}
	type point struct {
		p     int
		ratio float64
	}
	var pts []point
	for _, p := range []int{8, 16, 32} {
		wl, err := hbmsim.AdversarialWorkload(p, adv)
		if err != nil {
			t.Fatal(err)
		}
		k := hbmsim.AdversarialHBMSlots(p, adv)
		fifo := run(t, wl, k, 1, hbmsim.ArbiterFIFO, "", 0)
		prio := run(t, wl, k, 1, hbmsim.ArbiterPriority, "", 0)
		if fifo.Hits != 0 {
			t.Errorf("p=%d: FIFO hit %d times; the paper's trace never hits", p, fifo.Hits)
		}
		pts = append(pts, point{p, float64(fifo.Makespan) / float64(prio.Makespan)})
	}
	// Ratio grows with p and exceeds 3x by p=32.
	for i := 1; i < len(pts); i++ {
		if pts[i].ratio <= pts[i-1].ratio {
			t.Errorf("ratio not growing with p: %+v", pts)
		}
	}
	if last := pts[len(pts)-1]; last.ratio < 3 {
		t.Errorf("p=%d ratio %.2f, want >= 3 (paper reaches 40x at p~200)", last.p, last.ratio)
	}
}

// TestClaimPriorityWinsAtHighThreadCounts: Figure 2a's right side. On
// SpGEMM with many threads and scarce HBM, Priority beats FIFO clearly.
func TestClaimPriorityWinsAtHighThreadCounts(t *testing.T) {
	wl, err := hbmsim.SpGEMMWorkload(48, hbmsim.SpGEMMConfig{N: 48, PageBytes: 64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	const k, q = 400, 1
	fifo := run(t, wl, k, q, hbmsim.ArbiterFIFO, "", 0)
	prio := run(t, wl, k, q, hbmsim.ArbiterPriority, "", 0)
	ratio := float64(fifo.Makespan) / float64(prio.Makespan)
	if ratio < 1.3 {
		t.Errorf("FIFO/Priority at p=48: %.2f, want >= 1.3 (paper: up to 3.3x)", ratio)
	}
}

// TestClaimFIFOWinsAtLowThreadCounts: Figure 2's left side. With few
// threads and relatively plentiful HBM, FIFO can beat static Priority.
func TestClaimFIFOWinsAtLowThreadCounts(t *testing.T) {
	wl, err := hbmsim.SpGEMMWorkload(8, hbmsim.SpGEMMConfig{N: 48, PageBytes: 64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	const k, q = 200, 1
	fifo := run(t, wl, k, q, hbmsim.ArbiterFIFO, "", 0)
	prio := run(t, wl, k, q, hbmsim.ArbiterPriority, "", 0)
	ratio := float64(fifo.Makespan) / float64(prio.Makespan)
	if ratio > 1.0 {
		t.Errorf("FIFO/Priority at p=8: %.2f, want <= 1.0 (paper: FIFO ahead by up to 37%%)", ratio)
	}
}

// TestClaimDynamicPriorityCutsInconsistency: §4 / Table 1. Dynamic
// Priority at T=10k keeps (roughly) Priority's makespan while cutting its
// inconsistency substantially; FIFO has the lowest inconsistency but the
// highest average response time.
func TestClaimDynamicPriorityCutsInconsistency(t *testing.T) {
	wl, err := hbmsim.SpGEMMWorkload(48, hbmsim.SpGEMMConfig{N: 48, PageBytes: 64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	const k, q = 400, 1
	fifo := run(t, wl, k, q, hbmsim.ArbiterFIFO, "", 0)
	prio := run(t, wl, k, q, hbmsim.ArbiterPriority, hbmsim.PermuterStatic, 0)
	// At this reduced scale the whole run spans only ~17 periods of
	// T=10k, so the sweet spot of the T plateau sits lower; T=2k plays
	// the role the paper's T=10k plays at full scale.
	dyn := run(t, wl, k, q, hbmsim.ArbiterPriority, hbmsim.PermuterDynamic, hbmsim.Tick(2*k))

	if !(fifo.Inconsistency < dyn.Inconsistency && dyn.Inconsistency < prio.Inconsistency) {
		t.Errorf("inconsistency ordering: FIFO %.1f, Dynamic %.1f, Priority %.1f (want increasing)",
			fifo.Inconsistency, dyn.Inconsistency, prio.Inconsistency)
	}
	if !(prio.ResponseMean < dyn.ResponseMean && dyn.ResponseMean < fifo.ResponseMean) {
		t.Errorf("response-time ordering: Priority %.2f, Dynamic %.2f, FIFO %.2f (want increasing)",
			prio.ResponseMean, dyn.ResponseMean, fifo.ResponseMean)
	}
	if dyn.Inconsistency > prio.Inconsistency/1.3 {
		t.Errorf("Dynamic should cut Priority's inconsistency meaningfully: %.1f vs %.1f",
			dyn.Inconsistency, prio.Inconsistency)
	}
	if float64(dyn.Makespan) > 1.25*float64(prio.Makespan) {
		t.Errorf("Dynamic makespan %.0f too far above Priority's %d",
			float64(dyn.Makespan), prio.Makespan)
	}
}

// TestClaimPriorityIsNearOptimal: Theorem 1. Priority's makespan stays
// within a small constant of the lower bound on every workload we throw
// at it — and no adversarial construction here pushes it past that.
func TestClaimPriorityIsNearOptimal(t *testing.T) {
	builders := []struct {
		name string
		gen  func() (*hbmsim.Workload, error)
	}{
		{"adversarial", func() (*hbmsim.Workload, error) {
			return hbmsim.AdversarialWorkload(16, hbmsim.AdversarialConfig{Pages: 64, Reps: 20})
		}},
		{"spgemm", func() (*hbmsim.Workload, error) {
			return hbmsim.SpGEMMWorkload(16, hbmsim.SpGEMMConfig{N: 32, PageBytes: 64}, 2)
		}},
		{"uniform", func() (*hbmsim.Workload, error) {
			return hbmsim.SyntheticWorkload(16, hbmsim.SyntheticConfig{Refs: 2000, Pages: 100}, 3)
		}},
	}
	for _, b := range builders {
		wl, err := b.gen()
		if err != nil {
			t.Fatal(err)
		}
		k := wl.UniquePages() / 4
		if k < 4 {
			k = 4
		}
		res := run(t, wl, k, 1, hbmsim.ArbiterPriority, "", 0)
		ratio := hbmsim.CompetitiveRatio(res.Makespan, hbmsim.LowerBounds(wl, k, 1))
		if ratio > 12 {
			t.Errorf("%s: Priority's competitive-ratio estimate %.1f is not O(1)-ish", b.name, ratio)
		}
	}
}

// TestClaimCyclePriorityBoundsResponseTime: §4 — "a thread is guaranteed
// to become the highest priority thread within p priority permutations",
// bounding response time by p*T.
func TestClaimCyclePriorityBoundsResponseTime(t *testing.T) {
	const p, pages, reps = 8, 32, 10
	wl, err := hbmsim.AdversarialWorkload(p, hbmsim.AdversarialConfig{Pages: pages, Reps: reps})
	if err != nil {
		t.Fatal(err)
	}
	k := hbmsim.AdversarialHBMSlots(p, hbmsim.AdversarialConfig{Pages: pages, Reps: reps})
	T := hbmsim.Tick(k)
	res := run(t, wl, k, 1, hbmsim.ArbiterPriority, hbmsim.PermuterCycle, T)
	bound := float64(p)*float64(T) + float64(p) // p*T plus queue-drain slack
	if res.ResponseMax > bound {
		t.Errorf("cycle priority response max %.0f exceeds p*T bound %.0f", res.ResponseMax, bound)
	}
}
