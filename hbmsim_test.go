package hbmsim_test

import (
	"errors"
	"path/filepath"
	"testing"

	"hbmsim"
)

func TestRunEndToEnd(t *testing.T) {
	wl, err := hbmsim.AdversarialWorkload(4, hbmsim.AdversarialConfig{Pages: 8, Reps: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := hbmsim.Run(hbmsim.Config{HBMSlots: 16, Channels: 1}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRefs != 4*8*4 {
		t.Fatalf("refs: got %d, want 128", res.TotalRefs)
	}
	if res.Makespan == 0 {
		t.Fatal("makespan zero")
	}
}

func TestRunTraces(t *testing.T) {
	res, err := hbmsim.RunTraces(hbmsim.Config{HBMSlots: 4, Channels: 1},
		[][]hbmsim.PageID{{0, 1}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRefs != 4 {
		t.Fatalf("refs: %d", res.TotalRefs)
	}
}

func TestNewSimStepwise(t *testing.T) {
	wl := hbmsim.NewWorkload("w", []hbmsim.Trace{{0, 1, 0}})
	sim, err := hbmsim.NewSim(hbmsim.Config{HBMSlots: 4, Channels: 1}, wl)
	if err != nil {
		t.Fatal(err)
	}
	for sim.Step() {
	}
	if sim.Result().TotalRefs != 3 {
		t.Fatal("stepwise run incomplete")
	}
}

func TestDynamicPriorityConfig(t *testing.T) {
	cfg := hbmsim.DynamicPriorityConfig(100, 2)
	if cfg.HBMSlots != 100 || cfg.Channels != 2 {
		t.Fatalf("sizing: %+v", cfg)
	}
	if cfg.Arbiter != hbmsim.ArbiterPriority || cfg.Permuter != hbmsim.PermuterDynamic {
		t.Fatalf("policies: %+v", cfg)
	}
	if cfg.RemapPeriod != 1000 {
		t.Fatalf("T: got %d, want 10k = 1000", cfg.RemapPeriod)
	}
}

func TestParseHelpers(t *testing.T) {
	if k, err := hbmsim.ParseArbiter("priority"); err != nil || k != hbmsim.ArbiterPriority {
		t.Errorf("ParseArbiter: %v %v", k, err)
	}
	if _, err := hbmsim.ParseArbiter("nope"); err == nil {
		t.Error("bad arbiter accepted")
	}
	if k, err := hbmsim.ParsePermuter("cycle-reverse"); err != nil || k != hbmsim.PermuterCycleReverse {
		t.Errorf("ParsePermuter: %v %v", k, err)
	}
	if _, err := hbmsim.ParsePermuter("nope"); err == nil {
		t.Error("bad permuter accepted")
	}
	if k, err := hbmsim.ParseReplacement("clock"); err != nil || k != hbmsim.ReplaceClock {
		t.Errorf("ParseReplacement: %v %v", k, err)
	}
	if _, err := hbmsim.ParseReplacement("nope"); err == nil {
		t.Error("bad replacement accepted")
	}
}

func TestWorkloadFileRoundTrip(t *testing.T) {
	wl := hbmsim.NewWorkload("disk test", []hbmsim.Trace{{1, 2, 3}, {4, 5}})
	dir := t.TempDir()
	for _, name := range []string{"w.hbmt", "w.txt"} {
		path := filepath.Join(dir, name)
		if err := hbmsim.WriteWorkload(path, wl); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := hbmsim.ReadWorkload(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Name != wl.Name || got.TotalRefs() != wl.TotalRefs() || got.Cores() != wl.Cores() {
			t.Fatalf("%s round trip mismatch: %+v", name, got)
		}
	}
	if _, err := hbmsim.ReadWorkload(filepath.Join(dir, "missing.hbmt")); err == nil {
		t.Error("missing file accepted")
	}
	if err := hbmsim.WriteWorkload(filepath.Join(dir, "nodir", "x.hbmt"), wl); err == nil {
		t.Error("unwritable path accepted")
	}
}

func TestTruncatedErrorSurfaces(t *testing.T) {
	// k = q = 1 with two contending cores livelocks (documented model
	// behaviour); the facade must surface the typed error.
	res, err := hbmsim.RunTraces(hbmsim.Config{HBMSlots: 1, Channels: 1, MaxTicks: 300},
		[][]hbmsim.PageID{{0}, {1}})
	if err == nil {
		t.Fatal("expected truncation")
	}
	var te *hbmsim.TruncatedError
	if !errors.As(err, &te) {
		t.Fatalf("wrong error type: %T", err)
	}
	if res == nil || !res.Truncated {
		t.Fatal("partial result missing")
	}
}

func TestGeneratorsExported(t *testing.T) {
	cases := []struct {
		name string
		gen  func() (*hbmsim.Workload, error)
	}{
		{"sort", func() (*hbmsim.Workload, error) {
			return hbmsim.SortWorkload(2, hbmsim.SortConfig{N: 64}, 1)
		}},
		{"spgemm", func() (*hbmsim.Workload, error) {
			return hbmsim.SpGEMMWorkload(2, hbmsim.SpGEMMConfig{N: 12}, 1)
		}},
		{"densemm", func() (*hbmsim.Workload, error) {
			return hbmsim.DenseMMWorkload(2, hbmsim.DenseMMConfig{N: 4}, 1)
		}},
		{"stream", func() (*hbmsim.Workload, error) {
			return hbmsim.StreamWorkload(2, hbmsim.StreamConfig{N: 16}, 1)
		}},
		{"synthetic", func() (*hbmsim.Workload, error) {
			return hbmsim.SyntheticWorkload(2, hbmsim.SyntheticConfig{Kind: hbmsim.SyntheticZipf, Refs: 32, Pages: 8}, 1)
		}},
	}
	for _, c := range cases {
		wl, err := c.gen()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if err := wl.Validate(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if wl.TotalRefs() == 0 {
			t.Fatalf("%s: empty workload", c.name)
		}
	}
}

func TestImbalanceExported(t *testing.T) {
	wl := hbmsim.NewWorkload("w", []hbmsim.Trace{{1, 1, 1, 1}, {2, 2, 2, 2}})
	im, err := hbmsim.ImbalanceWorkload(wl, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(im.Traces[0]) != 2 || len(im.Traces[1]) != 4 {
		t.Fatalf("imbalance: %d/%d", len(im.Traces[0]), len(im.Traces[1]))
	}
}

func TestLowerBoundsExported(t *testing.T) {
	wl := hbmsim.NewWorkload("w", []hbmsim.Trace{{0, 1, 2}})
	b := hbmsim.LowerBounds(wl, 4, 1)
	if b.Makespan == 0 {
		t.Fatal("bound zero")
	}
	if hbmsim.CompetitiveRatio(2*b.Makespan, b) != 2 {
		t.Fatal("ratio wrong")
	}
}

func TestKNLExported(t *testing.T) {
	m := hbmsim.DefaultKNL()
	lat, err := m.ChaseLatencyNS(1<<30, hbmsim.KNLFlatDRAM)
	if err != nil || lat <= 0 {
		t.Fatalf("latency: %g, %v", lat, err)
	}
	bw, err := m.GLUPSBandwidthMiBs(1<<30, m.Threads, hbmsim.KNLFlatHBM)
	if err != nil || bw <= 0 {
		t.Fatalf("bandwidth: %g, %v", bw, err)
	}
	if _, err := m.ChaseLatencyNS(1<<40, hbmsim.KNLFlatHBM); err == nil {
		t.Error("oversize flat-HBM accepted")
	}
	if hbmsim.KNLCache == hbmsim.KNLFlatDRAM {
		t.Error("mode constants collide")
	}
}

func TestVersionSet(t *testing.T) {
	if hbmsim.Version == "" {
		t.Fatal("version empty")
	}
}
