package hbmsim_test

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"

	"hbmsim"
)

// ExampleResumeSim is the whole checkpoint/resume loop in one place: run
// a simulation halfway, snapshot it, reconstruct the simulator from the
// snapshot (in real use: in another process, after a crash), and finish
// both. The resumed run's Result is identical to the uninterrupted one.
func ExampleResumeSim() {
	wl := hbmsim.NewWorkload("loop", []hbmsim.Trace{
		{0, 1, 0, 1, 0, 1},
		{2, 3, 2, 3, 2, 3},
	})
	cfg := hbmsim.Config{HBMSlots: 4, Channels: 1}

	sim, err := hbmsim.NewSim(cfg, wl)
	if err != nil {
		panic(err)
	}
	sim.Step()
	sim.Step() // ... any number of steps

	var snap bytes.Buffer
	if err := sim.Checkpoint(&snap); err != nil {
		panic(err)
	}

	// Finish the original run.
	for sim.Step() {
	}

	// Resume the snapshot — cfg and wl must be exactly the checkpointed
	// run's — and finish it too.
	resumed, err := hbmsim.ResumeSim(&snap, cfg, wl)
	if err != nil {
		panic(err)
	}
	for resumed.Step() {
	}

	fmt.Println("bit-identical results:", reflect.DeepEqual(sim.Result(), resumed.Result()))
	// Output:
	// bit-identical results: true
}

// ExampleErrSnapshotMismatch: resuming under the wrong configuration is
// refused instead of silently producing a different simulation.
func ExampleErrSnapshotMismatch() {
	wl := hbmsim.NewWorkload("w", []hbmsim.Trace{{0, 1, 2, 3}})
	cfg := hbmsim.Config{HBMSlots: 4, Channels: 1}
	sim, err := hbmsim.NewSim(cfg, wl)
	if err != nil {
		panic(err)
	}
	var snap bytes.Buffer
	if err := sim.Checkpoint(&snap); err != nil {
		panic(err)
	}

	other := cfg
	other.HBMSlots = 8 // not the config the snapshot was taken under
	_, err = hbmsim.ResumeSim(&snap, other, wl)
	fmt.Println(errors.Is(err, hbmsim.ErrSnapshotMismatch))
	// Output:
	// true
}

// ExampleConfigFingerprint: the fingerprint keys snapshots and sweep
// journal rows — equal configurations (after defaulting) hash equal, any
// result-affecting change moves the hash.
func ExampleConfigFingerprint() {
	a := hbmsim.Config{HBMSlots: 1000, Channels: 1}
	b := a
	b.HBMSlots = 2000

	fmt.Println("same config, same key:", hbmsim.ConfigFingerprint(a) == hbmsim.ConfigFingerprint(a))
	fmt.Println("changed config, same key:", hbmsim.ConfigFingerprint(a) == hbmsim.ConfigFingerprint(b))
	// Output:
	// same config, same key: true
	// changed config, same key: false
}

// ExampleWorkloadFingerprint: the workload half of the snapshot key,
// hashed over the normalized traces. NewWorkload renumbers page IDs
// into dense disjoint ranges, so only the access structure (length,
// order, repeat pattern) matters — raw page-ID values do not.
func ExampleWorkloadFingerprint() {
	a := hbmsim.NewWorkload("a", []hbmsim.Trace{{0, 1, 2}})
	b := hbmsim.NewWorkload("b", []hbmsim.Trace{{0, 0, 1}}) // different repeat structure

	// Renumbering means raw IDs don't matter: {5, 6, 7} normalizes to
	// {0, 1, 2}, so it keys identically to workload a.
	c := hbmsim.NewWorkload("c", []hbmsim.Trace{{5, 6, 7}})

	fmt.Println("different structure, same key:", hbmsim.WorkloadFingerprint(a) == hbmsim.WorkloadFingerprint(b))
	fmt.Println("renumbered IDs, same key:", hbmsim.WorkloadFingerprint(a) == hbmsim.WorkloadFingerprint(c))
	// Output:
	// different structure, same key: false
	// renumbered IDs, same key: true
}
