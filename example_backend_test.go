package hbmsim_test

import (
	"fmt"

	"hbmsim"
)

// ExampleParseMemBackend parses the CLI's backend syntax (-backend plus
// -backend-params) into a MemBackendConfig for Config.Backend.
func ExampleParseMemBackend() {
	be, err := hbmsim.ParseMemBackend("bandwidth", "bytes_per_tick=8,latency_ticks=9")
	if err != nil {
		panic(err)
	}
	fmt.Println(be.Kind, be.BytesPerTick, be.LatencyTicks)
	if _, err := hbmsim.ParseMemBackend("warp-drive", ""); err != nil {
		fmt.Println("rejected unknown backend")
	}
	// Output:
	// bandwidth 8 9
	// rejected unknown backend
}

// ExampleMemBackends lists the registered far-memory backends — the
// values Config.Backend.Kind accepts.
func ExampleMemBackends() {
	fmt.Println(hbmsim.MemBackends())
	// Output:
	// [reference bandwidth hybrid]
}

// ExampleConfig_backend runs the same workload under the paper's
// one-tick-per-transfer reference model and under a bandwidth/latency
// backend. The realistic memory stretches every transfer, so the same
// policy takes longer — but results stay deterministic, checkpointable,
// and observable exactly as on the reference model.
func ExampleConfig_backend() {
	wl := hbmsim.NewWorkload("loop", []hbmsim.Trace{
		{0, 1, 2, 0, 1, 2},
		{5, 6, 7, 5, 6, 7},
	})
	base := hbmsim.Config{HBMSlots: 8, Channels: 1}

	ref, err := hbmsim.Run(base, wl)
	if err != nil {
		panic(err)
	}

	slow := base
	slow.Backend, err = hbmsim.ParseMemBackend("bandwidth", "bytes_per_tick=16,latency_ticks=4")
	if err != nil {
		panic(err)
	}
	bw, err := hbmsim.Run(slow, wl)
	if err != nil {
		panic(err)
	}

	fmt.Println("reference makespan:", ref.Makespan)
	fmt.Println("bandwidth makespan:", bw.Makespan)
	fmt.Println("same hits:", ref.Hits == bw.Hits)
	// Output:
	// reference makespan: 10
	// bandwidth makespan: 37
	// same hits: true
}
